"""Parallel, cached execution of independent simulation runs.

The paper's figures are sweeps — one run per (machine, workload,
processor count) — and every run is independent and deterministic.
This module turns a declared grid (:class:`RunPlan`) into results with
three orthogonal accelerations, none of which may change a single
number:

* **fan-out** — independent runs execute in a process pool
  (``jobs > 1``); results are merged back in plan order, so output is
  byte-identical to a serial execution;
* **dedup** — specs with the same content address
  (:func:`~repro.harness.cache.run_key`) execute once per plan; this
  is how a speedup series reuses its 1-processor baseline, and how
  software-DSM variants (user/kernel-level, lazy/eager, diff/nodiff)
  share one baseline run between *machines*;
* **cache** — a :class:`~repro.harness.cache.ResultCache` skips
  already-simulated points across invocations.

Determinism contract
--------------------

``execute_plan(plan, jobs=1)``, ``execute_plan(plan, jobs=N)`` and a
warm-cache execution all return results whose ``summary()``
dictionaries — and derived speedups — are identical (pinned by
``tests/test_parallel.py``).  The only rewrite the layer ever performs
is the machine *display name* on a shared result (a cached TreadMarks
baseline returned for the kernel-level variant reports the variant's
name, exactly as a fresh run would have).

Tracing interacts specially: inside a ``trace_session(trace=True)``
scope, spans must be collected live in this process, so plans execute
serially and bypass the cache (the deduplicated work list is
unchanged, keeping traced and untraced run counts equal).

Provenance and progress
-----------------------

When a :class:`~repro.ledger.Ledger` is in scope (via
:func:`~repro.ledger.ledger_session`, the ambient :func:`run_context`,
or the ``ledger=`` argument), every unique run of a plan appends one
append-only provenance record: misses record the simulation (code
version, fingerprints, fault plan, checker arming, wall time), cache
hits record the serve with a ``produced_by`` pointer to the producing
run_id.  The allocated ``run_id`` rides inside the worker via
:func:`~repro.ledger.run_scope`, so the returned ``RunResult`` (and
any metrics line or trace derived from it) carries the same identity
the ledger recorded.

Unless ``quiet``, per-run ``start``/``done`` lines stream to stderr —
workers print their own start lines (enabled through the
``REPRO_PROGRESS`` environment variable, which spawned processes
inherit) and the parent prints completions with wall time and a
running done/total count — so long sweeps are never silent.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.apps.base import Application
from repro.harness.cache import ResultCache, run_key
from repro.ledger import Ledger, active_ledger, run_record, run_scope
from repro.machines.base import Machine
from repro.stats.result import RunResult
from repro.trace import session as trace_session

#: Environment flag that tells pool workers to print start lines;
#: set (and restored) by :func:`execute_plan` when progress is on.
PROGRESS_ENV = "REPRO_PROGRESS"


@dataclass(frozen=True)
class RunSpec:
    """One simulation point: an app on a machine at a processor count."""

    machine: Machine
    app: Application
    nprocs: int
    seed: int = 42
    params: Optional[Dict[str, Any]] = None

    def key(self) -> str:
        """The spec's content address (dedup + cache lookup)."""
        return run_key(self.machine, self.app, self.nprocs,
                       seed=self.seed, params=self.params)


@dataclass
class RunPlan:
    """An ordered grid of runs; indices are stable result handles."""

    specs: List[RunSpec] = field(default_factory=list)

    def add(self, machine: Machine, app: Application, nprocs: int, *,
            seed: int = 42,
            params: Optional[Dict[str, Any]] = None) -> int:
        """Append one run; returns its index into the results list."""
        self.specs.append(RunSpec(machine, app, nprocs,
                                  seed=seed, params=params))
        return len(self.specs) - 1

    def add_series(self, machine: Machine, app: Application,
                   procs: Sequence[int], *, seed: int = 42,
                   params: Optional[Dict[str, Any]] = None) -> List[int]:
        """Append one run per processor count; returns their indices."""
        return [self.add(machine, app, p, seed=seed, params=params)
                for p in procs]

    def __len__(self) -> int:
        return len(self.specs)


# ======================================================================
# Ambient execution context
# ======================================================================
@dataclass
class RunContext:
    """Execution defaults installed by the CLI (or tests).

    ``quiet`` defaults to True for library/test use; the CLI flips it
    so interactive sweeps stream per-run progress by default
    (suppressed again with ``--quiet``).
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    ledger: Optional[Ledger] = None
    quiet: bool = True


_CONTEXT_STACK: List[RunContext] = []


@contextmanager
def run_context(*, jobs: int = 1,
                cache: Optional[ResultCache] = None,
                ledger: Optional[Ledger] = None,
                quiet: bool = True) -> Iterator[RunContext]:
    """Scope within which plans default to ``jobs`` workers + ``cache``.

    The experiment registry calls :func:`execute_plan` without
    threading options through every figure function; the CLI installs
    one context around a whole command instead.  ``ledger`` makes
    every plan executed in the scope append provenance records.
    """
    ctx = RunContext(jobs=jobs, cache=cache, ledger=ledger, quiet=quiet)
    _CONTEXT_STACK.append(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT_STACK.pop()


def current_context() -> RunContext:
    """The innermost active context (a serial default otherwise)."""
    return _CONTEXT_STACK[-1] if _CONTEXT_STACK else RunContext()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value (None = ambient, 0 = all cores)."""
    if jobs is None:
        jobs = current_context().jobs
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


# ======================================================================
# Execution
# ======================================================================
def _spec_label(spec: RunSpec) -> str:
    return f"{spec.machine.name}/{spec.app.name}/p{spec.nprocs}"


def _run_spec(spec: RunSpec,
              run_id: Optional[str] = None) -> Tuple[RunResult, float]:
    """Execute one spec; returns ``(result, wall_seconds)``.

    Runs with session auto-record suppressed (the plan layer records
    results itself, in plan order) and inside ``run_scope(run_id)`` so
    the result — whether produced here in the parent or in a pool
    worker — is stamped with the ledger identity the parent allocated.
    Prints a start line to stderr when ``REPRO_PROGRESS`` is set; in
    the pool that line comes from the worker, marking *actual* start
    rather than submission.
    """
    if os.environ.get(PROGRESS_ENV) == "1":
        # Single write: worker processes share stderr, and two-part
        # prints (text, then newline) interleave mid-line under load.
        sys.stderr.write(f"[run {run_id or '-'}] start "
                         f"{_spec_label(spec)} pid={os.getpid()}\n")
        sys.stderr.flush()
    start = time.perf_counter()
    with trace_session.no_session(), run_scope(run_id):
        result = spec.machine.run(spec.app, spec.nprocs,
                                  seed=spec.seed, params=spec.params)
    return result, time.perf_counter() - start


def _localize(result: RunResult, spec: RunSpec) -> RunResult:
    """Stamp a shared/cached result with the requesting machine's name."""
    if result.machine == spec.machine.name:
        return result
    return dataclasses.replace(result, machine=spec.machine.name)


def _execute_traced(specs: Sequence[RunSpec],
                    keys: Sequence[str]) -> List[RunResult]:
    """Serial execution inside a live tracing session.

    Runs the deduplicated work list in plan order; ``Machine.run``
    records each (result, tracer) pair into the session itself.
    """
    by_key: Dict[str, RunResult] = {}
    results: List[Optional[RunResult]] = [None] * len(specs)
    for i, spec in enumerate(specs):
        produced = by_key.get(keys[i])
        if produced is None:
            produced = spec.machine.run(spec.app, spec.nprocs,
                                        seed=spec.seed, params=spec.params)
            by_key[keys[i]] = produced
        results[i] = _localize(produced, spec)
    return results  # type: ignore[return-value]


def execute_plan(plan: RunPlan, *, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 ledger: Optional[Ledger] = None,
                 quiet: Optional[bool] = None) -> List[RunResult]:
    """Execute every spec of ``plan``; results in plan order.

    ``jobs``/``cache``/``ledger``/``quiet`` default to the ambient
    :func:`run_context` (``ledger`` additionally falls back to the
    ambient :func:`~repro.ledger.ledger_session`).  Inside a
    metrics-collecting session, exactly one result per *unique* run is
    recorded, in plan order — identical whether the run executed
    serially, in the pool, or came from the cache.
    """
    specs = plan.specs
    if not specs:
        return []
    keys = [spec.key() for spec in specs]

    session = trace_session.active_session()
    if session is not None and session.trace:
        return _execute_traced(specs, keys)

    context = current_context()
    jobs = resolve_jobs(jobs)
    if cache is None:
        cache = context.cache
    if ledger is None:
        ledger = context.ledger or active_ledger()
    if quiet is None:
        quiet = context.quiet
    plan_start = time.perf_counter()

    results: List[Optional[RunResult]] = [None] * len(specs)
    unique_order: List[str] = []          # first-appearance key order
    first_index: Dict[str, int] = {}      # key -> first spec index
    pending: Dict[str, List[int]] = {}    # key -> spec indices to run
    produced: Dict[str, RunResult] = {}   # key -> canonical result
    hit_keys: List[str] = []

    for i, key in enumerate(keys):
        if key not in pending:
            unique_order.append(key)
            first_index[key] = i
            pending[key] = []
            if cache is not None:
                hit = cache.get(key)
                if hit is not None:
                    produced[key] = hit
                    hit_keys.append(key)
        if key not in produced:
            pending[key].append(i)

    work: List[Tuple[str, RunSpec]] = [
        (key, specs[indices[0]])
        for key, indices in pending.items() if indices]

    # Ledger identities: a cache hit is an attempt like any other —
    # it appends immediately, pointing at the producing run_id, and
    # the served result is re-stamped with the hit's own identity.
    # Misses get their run_id *before* execution so it rides into the
    # worker (run_scope) and onto the RunResult.
    assigned: Dict[str, Tuple[str, int]] = {}
    if ledger is not None:
        for key in hit_keys:
            hit = produced[key]
            hit_id, attempt = ledger.next_run_id(key)
            spec = specs[first_index[key]]
            ledger.append(run_record(
                run_id=hit_id, key=key, attempt=attempt,
                machine=spec.machine, app=spec.app, nprocs=spec.nprocs,
                seed=spec.seed, params=spec.params, result=hit,
                path="hit", executor="cache",
                produced_by=hit.run_id))
            produced[key] = dataclasses.replace(hit, run_id=hit_id)
        for key, _spec in work:
            assigned[key] = ledger.next_run_id(key)

    total = len(work)
    done = 0
    walls: Dict[str, float] = {}

    def run_id_of(key: str) -> Optional[str]:
        return assigned[key][0] if key in assigned else None

    def progress_done(key: str, spec: RunSpec) -> None:
        nonlocal done
        done += 1
        if not quiet:
            sys.stderr.write(f"[run {run_id_of(key) or '-'}] done "
                             f"{_spec_label(spec)} "
                             f"wall={walls[key]:.2f}s "
                             f"({done}/{total})\n")
            sys.stderr.flush()

    pooled = len(work) > 1 and jobs > 1
    previous_progress = os.environ.get(PROGRESS_ENV)
    if not quiet:
        os.environ[PROGRESS_ENV] = "1"
    try:
        if pooled:
            workers = min(jobs, len(work))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_run_spec, spec, run_id_of(key)):
                        (key, spec)
                    for key, spec in work}
                outstanding = set(futures)
                while outstanding:
                    finished, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED)
                    for future in finished:
                        key, spec = futures[future]
                        produced[key], walls[key] = future.result()
                        progress_done(key, spec)
        else:
            for key, spec in work:
                produced[key], walls[key] = _run_spec(spec,
                                                      run_id_of(key))
                progress_done(key, spec)
    finally:
        if not quiet:
            if previous_progress is None:
                os.environ.pop(PROGRESS_ENV, None)
            else:
                os.environ[PROGRESS_ENV] = previous_progress

    if cache is not None:
        for key, _spec in work:
            cache.put(key, produced[key])
    if ledger is not None:
        for key, spec in work:
            miss_id, attempt = assigned[key]
            ledger.append(run_record(
                run_id=miss_id, key=key, attempt=attempt,
                machine=spec.machine, app=spec.app, nprocs=spec.nprocs,
                seed=spec.seed, params=spec.params,
                result=produced[key],
                path="miss" if cache is not None else "fresh",
                executor="pool" if pooled else "serial",
                wall_s=walls[key]))

    if not quiet:
        unique = len(unique_order)
        hit_pct = 100.0 * len(hit_keys) / unique if unique else 0.0
        print(f"[plan] specs={len(specs)} unique={unique} "
              f"executed={total} cache_hits={len(hit_keys)} "
              f"({hit_pct:.0f}%) jobs={jobs} "
              f"wall={time.perf_counter() - plan_start:.2f}s",
              file=sys.stderr, flush=True)

    for i, key in enumerate(keys):
        results[i] = _localize(produced[key], specs[i])

    if session is not None:
        for key in unique_order:
            session.record(results[first_index[key]], None)

    return results  # type: ignore[return-value]


def run_grid(entries: Sequence[Tuple[str, Machine, Application, int]], *,
             jobs: Optional[int] = None,
             cache: Optional[ResultCache] = None
             ) -> Dict[str, RunResult]:
    """Execute tagged runs; returns ``{tag: result}``.

    Convenience over :class:`RunPlan` for experiments whose grids are
    naturally keyed (workload names, machine labels) rather than
    positional.  Tags must be unique.
    """
    plan = RunPlan()
    tags: List[str] = []
    for tag, machine, app, nprocs in entries:
        if tag in tags:
            raise ValueError(f"duplicate grid tag {tag!r}")
        tags.append(tag)
        plan.add(machine, app, nprocs)
    results = execute_plan(plan, jobs=jobs, cache=cache)
    return dict(zip(tags, results))
