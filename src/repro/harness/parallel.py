"""Parallel, cached execution of independent simulation runs.

The paper's figures are sweeps — one run per (machine, workload,
processor count) — and every run is independent and deterministic.
This module turns a declared grid (:class:`RunPlan`) into results with
three orthogonal accelerations, none of which may change a single
number:

* **fan-out** — independent runs execute in a process pool
  (``jobs > 1``); results are merged back in plan order, so output is
  byte-identical to a serial execution;
* **dedup** — specs with the same content address
  (:func:`~repro.harness.cache.run_key`) execute once per plan; this
  is how a speedup series reuses its 1-processor baseline, and how
  software-DSM variants (user/kernel-level, lazy/eager, diff/nodiff)
  share one baseline run between *machines*;
* **cache** — a :class:`~repro.harness.cache.ResultCache` skips
  already-simulated points across invocations.

Determinism contract
--------------------

``execute_plan(plan, jobs=1)``, ``execute_plan(plan, jobs=N)`` and a
warm-cache execution all return results whose ``summary()``
dictionaries — and derived speedups — are identical (pinned by
``tests/test_parallel.py``).  The only rewrite the layer ever performs
is the machine *display name* on a shared result (a cached TreadMarks
baseline returned for the kernel-level variant reports the variant's
name, exactly as a fresh run would have).

Tracing interacts specially: inside a ``trace_session(trace=True)``
scope, spans must be collected live in this process, so plans execute
serially and bypass the cache (the deduplicated work list is
unchanged, keeping traced and untraced run counts equal).

Provenance and progress
-----------------------

When a :class:`~repro.ledger.Ledger` is in scope (via
:func:`~repro.ledger.ledger_session`, the ambient :func:`run_context`,
or the ``ledger=`` argument), every unique run of a plan appends one
append-only provenance record: misses record the simulation (code
version, fingerprints, fault plan, checker arming, wall time), cache
hits record the serve with a ``produced_by`` pointer to the producing
run_id.  The allocated ``run_id`` rides inside the worker via
:func:`~repro.ledger.run_scope`, so the returned ``RunResult`` (and
any metrics line or trace derived from it) carries the same identity
the ledger recorded.

The pool
--------

Fan-out uses one *persistent* pool of warm workers per process: the
first parallel plan pays the interpreter/numpy spawn cost, later
plans reuse the same workers.  A plan's work list is pickled once
into a :mod:`multiprocessing.shared_memory` segment and workers are
dispatched *index batches* into it, so per-task transfer is a few
integers regardless of machine/app size.  Because warm workers keep
the environment they were forked with, each dispatch re-ships the
ambient knobs that may legally change between plans
(``REPRO_CHECK``, ``REPRO_PROGRESS``).

Worker counts are clamped to physical cores: simulation is CPU-bound,
so extra workers only add pickling and scheduling overhead.  When the
clamp leaves a single worker (small boxes), the plan runs in-process
instead — ``--jobs N`` then costs nothing over serial.

Unless ``quiet``, per-run ``start``/``done`` lines stream to stderr —
workers print their own start lines (enabled through the
``REPRO_PROGRESS`` environment variable) and the parent prints
completions with wall time and a running done/total count — so long
sweeps are never silent.  All progress lines from a pooled plan are
serialized through one queue drained by a single writer thread in the
parent, so lines never interleave mid-line under load.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
import pickle
import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.apps.base import Application
from repro.errors import WorkerCrashError
from repro.harness.cache import ResultCache, run_key
from repro.ledger import Ledger, active_ledger, run_record, run_scope
from repro.machines.base import Machine
from repro.stats.result import RunResult
from repro.trace import session as trace_session

#: Environment flag that tells pool workers to print start lines;
#: set (and restored) by :func:`execute_plan` when progress is on.
PROGRESS_ENV = "REPRO_PROGRESS"

#: Environment variables whose ambient values are re-shipped to the
#: persistent pool with every dispatch (warm workers keep the
#: environment they were forked with, so inheritance alone would go
#: stale the moment e.g. a ``checking()`` scope opens or closes).
SHIPPED_ENV = ("REPRO_CHECK", PROGRESS_ENV)


@dataclass(frozen=True)
class RunSpec:
    """One simulation point: an app on a machine at a processor count."""

    machine: Machine
    app: Application
    nprocs: int
    seed: int = 42
    params: Optional[Dict[str, Any]] = None

    def key(self) -> str:
        """The spec's content address (dedup + cache lookup)."""
        return run_key(self.machine, self.app, self.nprocs,
                       seed=self.seed, params=self.params)


@dataclass
class RunPlan:
    """An ordered grid of runs; indices are stable result handles."""

    specs: List[RunSpec] = field(default_factory=list)

    def add(self, machine: Machine, app: Application, nprocs: int, *,
            seed: int = 42,
            params: Optional[Dict[str, Any]] = None) -> int:
        """Append one run; returns its index into the results list."""
        self.specs.append(RunSpec(machine, app, nprocs,
                                  seed=seed, params=params))
        return len(self.specs) - 1

    def add_series(self, machine: Machine, app: Application,
                   procs: Sequence[int], *, seed: int = 42,
                   params: Optional[Dict[str, Any]] = None) -> List[int]:
        """Append one run per processor count; returns their indices."""
        return [self.add(machine, app, p, seed=seed, params=params)
                for p in procs]

    def __len__(self) -> int:
        return len(self.specs)


# ======================================================================
# Ambient execution context
# ======================================================================
@dataclass
class RunContext:
    """Execution defaults installed by the CLI (or tests).

    ``quiet`` defaults to True for library/test use; the CLI flips it
    so interactive sweeps stream per-run progress by default
    (suppressed again with ``--quiet``).
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    ledger: Optional[Ledger] = None
    quiet: bool = True


_CONTEXT_STACK: List[RunContext] = []


@contextmanager
def run_context(*, jobs: int = 1,
                cache: Optional[ResultCache] = None,
                ledger: Optional[Ledger] = None,
                quiet: bool = True) -> Iterator[RunContext]:
    """Scope within which plans default to ``jobs`` workers + ``cache``.

    The experiment registry calls :func:`execute_plan` without
    threading options through every figure function; the CLI installs
    one context around a whole command instead.  ``ledger`` makes
    every plan executed in the scope append provenance records.
    """
    ctx = RunContext(jobs=jobs, cache=cache, ledger=ledger, quiet=quiet)
    _CONTEXT_STACK.append(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT_STACK.pop()


def current_context() -> RunContext:
    """The innermost active context (a serial default otherwise)."""
    return _CONTEXT_STACK[-1] if _CONTEXT_STACK else RunContext()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value (None = ambient, 0 = all cores)."""
    if jobs is None:
        jobs = current_context().jobs
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


# ======================================================================
# The persistent worker pool
# ======================================================================
def _cpu_count() -> int:
    return os.cpu_count() or 1


def effective_workers(jobs: int, nwork: int) -> int:
    """Worker processes a plan will actually use.

    ``jobs`` is clamped to the number of unique runs and to physical
    cores — CPU-bound simulations gain nothing from oversubscription,
    they only pay extra transfer and context switching.  A result of
    1 means the plan runs in-process (no pool at all).
    """
    return max(1, min(jobs, nwork, _cpu_count()))


_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_PROGRESS_QUEUE: Optional[Any] = None
_DRAIN_THREAD: Optional[threading.Thread] = None
_WORKER_QUEUE: Optional[Any] = None   # set in workers by _init_worker


def _progress_write(line: str) -> None:
    """Emit one progress line through the single-writer channel.

    In a pool worker this enqueues to the parent's drain thread; in
    the parent (serial path, plan summaries) it enqueues too when the
    queue exists, so worker and parent lines share one writer and
    never interleave mid-line.  Before any pool has been created the
    line goes straight to stderr.
    """
    queue = _WORKER_QUEUE or _PROGRESS_QUEUE
    if queue is not None:
        queue.put(line)
    else:
        sys.stderr.write(line)
        sys.stderr.flush()


def _drain_progress(queue: Any) -> None:
    while True:
        line = queue.get()
        if line is None:
            return
        sys.stderr.write(line)
        sys.stderr.flush()


def _init_worker(queue: Any) -> None:
    global _WORKER_QUEUE
    _WORKER_QUEUE = queue


def _ensure_pool(workers: int) -> ProcessPoolExecutor:
    """The shared warm pool, (re)built only when it must grow."""
    global _POOL, _POOL_WORKERS, _PROGRESS_QUEUE, _DRAIN_THREAD
    if _POOL is not None and _POOL_WORKERS >= workers:
        return _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=True)
    ctx = get_context()
    if _PROGRESS_QUEUE is None:
        _PROGRESS_QUEUE = ctx.Queue()
        _DRAIN_THREAD = threading.Thread(
            target=_drain_progress, args=(_PROGRESS_QUEUE,),
            daemon=True)
        _DRAIN_THREAD.start()
    _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=ctx,
                                initializer=_init_worker,
                                initargs=(_PROGRESS_QUEUE,))
    _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (idempotent).

    Registered atexit; also the recovery path when a worker dies and
    breaks the executor.  Stops the progress drain thread too, so
    interpreter shutdown never catches it mid-``get``.
    """
    global _POOL, _POOL_WORKERS, _PROGRESS_QUEUE, _DRAIN_THREAD
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0
    if _PROGRESS_QUEUE is not None:
        _PROGRESS_QUEUE.put(None)
        if _DRAIN_THREAD is not None:
            _DRAIN_THREAD.join(timeout=2)
        _PROGRESS_QUEUE.close()
        _PROGRESS_QUEUE = None
        _DRAIN_THREAD = None


atexit.register(shutdown_pool)


# -- the shared plan blob ---------------------------------------------
_PLAN_CACHE: Dict[str, Any] = {}


def _publish_plan(payload: Any) -> Tuple[SharedMemory, int]:
    """Pickle ``payload`` once into a shared-memory segment.

    Every worker attaches and unpickles it once per plan; dispatching
    a task is then just a few indices.  The parent owns the segment
    and unlinks it when the plan completes.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    shm = SharedMemory(create=True, size=len(blob))
    shm.buf[:len(blob)] = blob
    return shm, len(blob)


def _load_plan(name: str, nbytes: int) -> Any:
    """Worker side: attach, unpickle, and cache one plan blob."""
    payload = _PLAN_CACHE.get(name)
    if payload is None:
        # Forked workers share the parent's resource tracker, so the
        # attach-side registration collapses into the parent's own
        # (the tracker cache is a set) and the parent's unlink cleans
        # up for everyone — no per-worker deregistration needed.
        shm = SharedMemory(name=name)
        try:
            payload = pickle.loads(bytes(shm.buf[:nbytes]))
        finally:
            shm.close()
        _PLAN_CACHE.clear()   # one plan at a time; drop stale blobs
        _PLAN_CACHE[name] = payload
    return payload


def _apply_env(env: Dict[str, Optional[str]]) -> None:
    for key, value in env.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


def _run_batch(shm_name: str, nbytes: int, indices: Sequence[int],
               env: Dict[str, Optional[str]]
               ) -> List[Tuple[int, "RunResult", float]]:
    """Execute one dispatched batch of work-list indices in a worker."""
    _apply_env(env)
    specs, run_ids = _load_plan(shm_name, nbytes)
    return [(i, *_run_spec(specs[i], run_ids[i])) for i in indices]


def _dispatch_batches(nwork: int, workers: int) -> List[List[int]]:
    """Round-robin the work list into at most ``4 * workers`` batches.

    Striding interleaves neighbours (adjacent specs — same series,
    growing processor counts — correlate in cost), and four batches
    per worker leaves slack for load imbalance while keeping the
    dispatch count far below one-future-per-run on big sweeps.
    """
    nbatches = min(nwork, workers * 4)
    return [list(range(b, nwork, nbatches)) for b in range(nbatches)]


# ======================================================================
# Execution
# ======================================================================
def _spec_label(spec: RunSpec) -> str:
    return f"{spec.machine.name}/{spec.app.name}/p{spec.nprocs}"


def _run_spec(spec: RunSpec,
              run_id: Optional[str] = None) -> Tuple[RunResult, float]:
    """Execute one spec; returns ``(result, wall_seconds)``.

    Runs with session auto-record suppressed (the plan layer records
    results itself, in plan order) and inside ``run_scope(run_id)`` so
    the result — whether produced here in the parent or in a pool
    worker — is stamped with the ledger identity the parent allocated.
    Prints a start line to stderr when ``REPRO_PROGRESS`` is set; in
    the pool that line comes from the worker, marking *actual* start
    rather than submission.
    """
    if os.environ.get(PROGRESS_ENV) == "1":
        _progress_write(f"[run {run_id or '-'}] start "
                        f"{_spec_label(spec)} pid={os.getpid()}\n")
    start = time.perf_counter()
    with trace_session.no_session(), run_scope(run_id):
        result = spec.machine.run(spec.app, spec.nprocs,
                                  seed=spec.seed, params=spec.params)
    return result, time.perf_counter() - start


def _localize(result: RunResult, spec: RunSpec) -> RunResult:
    """Stamp a shared/cached result with the requesting machine's name."""
    if result.machine == spec.machine.name:
        return result
    return dataclasses.replace(result, machine=spec.machine.name)


def _execute_traced(specs: Sequence[RunSpec],
                    keys: Sequence[str]) -> List[RunResult]:
    """Serial execution inside a live tracing session.

    Runs the deduplicated work list in plan order; ``Machine.run``
    records each (result, tracer) pair into the session itself.
    """
    by_key: Dict[str, RunResult] = {}
    results: List[Optional[RunResult]] = [None] * len(specs)
    for i, spec in enumerate(specs):
        produced = by_key.get(keys[i])
        if produced is None:
            produced = spec.machine.run(spec.app, spec.nprocs,
                                        seed=spec.seed, params=spec.params)
            by_key[keys[i]] = produced
        results[i] = _localize(produced, spec)
    return results  # type: ignore[return-value]


#: Isolated attempts a spec gets after a worker crash before it is
#: quarantined and the plan fails with :class:`WorkerCrashError`.
MAX_WORKER_RETRIES = 3


def _execute_pooled(work: Sequence[Tuple[str, RunSpec]],
                    run_id_of: Any, produced: Dict[str, RunResult],
                    walls: Dict[str, float], progress_done: Any,
                    workers: int, on_worker_crash: Any = None) -> None:
    """Run the work list on the persistent pool.

    The ``(specs, run_ids)`` payload travels once through shared
    memory; each dispatched future carries only work-list indices.
    Results stream back per batch and are merged under their content
    keys as batches complete.

    The pool self-heals: a worker dying (OOM kill, segfault, an
    ``os._exit`` in application code) poisons the whole executor, so
    the broken pool is torn down, a fresh one is spawned, and every
    run that had not reported back is retried *individually* — one
    spec per dispatch — which both re-runs the innocent casualties of
    the shared batch and isolates the culprit.  A spec that keeps
    killing workers is quarantined after :data:`MAX_WORKER_RETRIES`
    isolated attempts and the plan fails with
    :class:`~repro.errors.WorkerCrashError` naming it; each failed
    attempt is reported through ``on_worker_crash(key, spec, error)``
    so the provenance ledger records attempts that produced no result.
    """
    specs = [spec for _key, spec in work]
    run_ids = [run_id_of(key) for key, _spec in work]
    env = {name: os.environ.get(name) for name in SHIPPED_ENV}
    completed: set = set()

    def merge(i: int, result: RunResult, wall: float) -> None:
        key, spec = work[i]
        completed.add(i)
        produced[key] = result
        walls[key] = wall
        progress_done(key, spec)

    pool = _ensure_pool(workers)
    shm, nbytes = _publish_plan((specs, run_ids))
    try:
        outstanding = {
            pool.submit(_run_batch, shm.name, nbytes, batch, env)
            for batch in _dispatch_batches(len(work), workers)}
        while outstanding:
            finished, outstanding = wait(outstanding,
                                         return_when=FIRST_COMPLETED)
            for future in finished:
                try:
                    rows = future.result()
                except BrokenProcessPool:
                    continue  # survivors handled by the retry pass
                for i, result, wall in rows:
                    merge(i, result, wall)
    except BrokenProcessPool:
        pass  # fall through to the retry pass
    finally:
        shm.close()
        shm.unlink()

    remaining = [i for i in range(len(work)) if i not in completed]
    if not remaining:
        return
    if _POOL is None or getattr(_POOL, "_broken", False):
        shutdown_pool()
    quarantined: List[str] = []
    for i in remaining:
        key, spec = work[i]
        for attempt in range(1, MAX_WORKER_RETRIES + 1):
            pool = _ensure_pool(workers)
            shm, nbytes = _publish_plan(([spec], [run_id_of(key)]))
            try:
                rows = pool.submit(_run_batch, shm.name, nbytes,
                                   [0], env).result()
                merge(i, rows[0][1], rows[0][2])
                break
            except BrokenProcessPool:
                shutdown_pool()
                if on_worker_crash is not None:
                    on_worker_crash(
                        key, spec,
                        f"worker process died (isolated attempt "
                        f"{attempt}/{MAX_WORKER_RETRIES})")
            finally:
                shm.close()
                shm.unlink()
        else:
            quarantined.append(_spec_label(spec))
    if quarantined:
        raise WorkerCrashError(quarantined, MAX_WORKER_RETRIES)


def execute_plan(plan: RunPlan, *, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 ledger: Optional[Ledger] = None,
                 quiet: Optional[bool] = None) -> List[RunResult]:
    """Execute every spec of ``plan``; results in plan order.

    ``jobs``/``cache``/``ledger``/``quiet`` default to the ambient
    :func:`run_context` (``ledger`` additionally falls back to the
    ambient :func:`~repro.ledger.ledger_session`).  Inside a
    metrics-collecting session, exactly one result per *unique* run is
    recorded, in plan order — identical whether the run executed
    serially, in the pool, or came from the cache.
    """
    specs = plan.specs
    if not specs:
        return []
    keys = [spec.key() for spec in specs]

    session = trace_session.active_session()
    if session is not None and session.trace:
        return _execute_traced(specs, keys)

    context = current_context()
    jobs = resolve_jobs(jobs)
    if cache is None:
        cache = context.cache
    if ledger is None:
        ledger = context.ledger or active_ledger()
    if quiet is None:
        quiet = context.quiet
    plan_start = time.perf_counter()

    results: List[Optional[RunResult]] = [None] * len(specs)
    unique_order: List[str] = []          # first-appearance key order
    first_index: Dict[str, int] = {}      # key -> first spec index
    pending: Dict[str, List[int]] = {}    # key -> spec indices to run
    produced: Dict[str, RunResult] = {}   # key -> canonical result
    hit_keys: List[str] = []

    for i, key in enumerate(keys):
        if key not in pending:
            unique_order.append(key)
            first_index[key] = i
            pending[key] = []
            if cache is not None:
                hit = cache.get(key)
                if hit is not None:
                    produced[key] = hit
                    hit_keys.append(key)
        if key not in produced:
            pending[key].append(i)

    work: List[Tuple[str, RunSpec]] = [
        (key, specs[indices[0]])
        for key, indices in pending.items() if indices]

    # Ledger identities: a cache hit is an attempt like any other —
    # it appends immediately, pointing at the producing run_id, and
    # the served result is re-stamped with the hit's own identity.
    # Misses get their run_id *before* execution so it rides into the
    # worker (run_scope) and onto the RunResult.
    assigned: Dict[str, Tuple[str, int]] = {}
    if ledger is not None:
        for key in hit_keys:
            hit = produced[key]
            hit_id, attempt = ledger.next_run_id(key)
            spec = specs[first_index[key]]
            ledger.append(run_record(
                run_id=hit_id, key=key, attempt=attempt,
                machine=spec.machine, app=spec.app, nprocs=spec.nprocs,
                seed=spec.seed, params=spec.params, result=hit,
                path="hit", executor="cache",
                produced_by=hit.run_id))
            produced[key] = dataclasses.replace(hit, run_id=hit_id)
        for key, _spec in work:
            assigned[key] = ledger.next_run_id(key)

    total = len(work)
    done = 0
    walls: Dict[str, float] = {}

    def run_id_of(key: str) -> Optional[str]:
        return assigned[key][0] if key in assigned else None

    def progress_done(key: str, spec: RunSpec) -> None:
        nonlocal done
        done += 1
        if not quiet:
            _progress_write(f"[run {run_id_of(key) or '-'}] done "
                            f"{_spec_label(spec)} "
                            f"wall={walls[key]:.2f}s "
                            f"({done}/{total})\n")

    def on_worker_crash(key: str, spec: RunSpec, error: str) -> None:
        # A crashed worker produced no RunResult, but the attempt
        # still happened: append a result-less record so the ledger's
        # attempt chain shows the failures leading to the retry (or to
        # quarantine).  The eventual successful retry keeps the run_id
        # originally assigned to this key.
        if ledger is None:
            return
        crash_id, attempt = ledger.next_run_id(key)
        ledger.append(run_record(
            run_id=crash_id, key=key, attempt=attempt,
            machine=spec.machine, app=spec.app, nprocs=spec.nprocs,
            seed=spec.seed, params=spec.params, result=None,
            path="worker-crash", executor="pool", error=error))

    workers = effective_workers(jobs, len(work))
    pooled = workers > 1
    previous_progress = os.environ.get(PROGRESS_ENV)
    if not quiet:
        os.environ[PROGRESS_ENV] = "1"
    try:
        if pooled:
            _execute_pooled(work, run_id_of, produced, walls,
                            progress_done, workers,
                            on_worker_crash=on_worker_crash)
        else:
            for key, spec in work:
                produced[key], walls[key] = _run_spec(spec,
                                                      run_id_of(key))
                progress_done(key, spec)
    finally:
        if not quiet:
            if previous_progress is None:
                os.environ.pop(PROGRESS_ENV, None)
            else:
                os.environ[PROGRESS_ENV] = previous_progress

    if cache is not None:
        for key, _spec in work:
            cache.put(key, produced[key])
    if ledger is not None:
        for key, spec in work:
            miss_id, attempt = assigned[key]
            ledger.append(run_record(
                run_id=miss_id, key=key, attempt=attempt,
                machine=spec.machine, app=spec.app, nprocs=spec.nprocs,
                seed=spec.seed, params=spec.params,
                result=produced[key],
                path="miss" if cache is not None else "fresh",
                executor="pool" if pooled else "serial",
                wall_s=walls[key]))

    if not quiet:
        unique = len(unique_order)
        hit_pct = 100.0 * len(hit_keys) / unique if unique else 0.0
        _progress_write(f"[plan] specs={len(specs)} unique={unique} "
                        f"executed={total} cache_hits={len(hit_keys)} "
                        f"({hit_pct:.0f}%) jobs={jobs} "
                        f"workers={workers} "
                        f"wall={time.perf_counter() - plan_start:.2f}s\n")

    for i, key in enumerate(keys):
        results[i] = _localize(produced[key], specs[i])

    if session is not None:
        for key in unique_order:
            session.record(results[first_index[key]], None)

    return results  # type: ignore[return-value]


def run_grid(entries: Sequence[Tuple[str, Machine, Application, int]], *,
             jobs: Optional[int] = None,
             cache: Optional[ResultCache] = None
             ) -> Dict[str, RunResult]:
    """Execute tagged runs; returns ``{tag: result}``.

    Convenience over :class:`RunPlan` for experiments whose grids are
    naturally keyed (workload names, machine labels) rather than
    positional.  Tags must be unique.
    """
    plan = RunPlan()
    tags: List[str] = []
    for tag, machine, app, nprocs in entries:
        if tag in tags:
            raise ValueError(f"duplicate grid tag {tag!r}")
        tags.append(tag)
        plan.add(machine, app, nprocs)
    results = execute_plan(plan, jobs=jobs, cache=cache)
    return dict(zip(tags, results))
