"""Executable shape checks: the paper's qualitative claims as code.

``repro-harness validate`` runs a set of experiments and evaluates the
claims the paper makes about them — "TreadMarks beats the SGI on large
SOR", "HS sends a small fraction of AS's messages", and so on — and
prints PASS/FAIL per claim.  This turns the reproduction's definition
of success (DESIGN.md's *shape targets*) into something a CI job can
assert.

Each check declares which experiment it consumes; experiments are run
once and shared between checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.harness.experiments import Report, Scale, run_experiment


@dataclass(frozen=True)
class ShapeCheck:
    """One verifiable claim about one experiment's report data."""

    name: str
    exp_id: str
    claim: str
    predicate: Callable[[Report], bool]

    def evaluate(self, report: Report) -> bool:
        return bool(self.predicate(report))


def _top(speedups: Dict[int, float]) -> float:
    return speedups[max(speedups)]


def _speedup(report: Report, machine: str) -> float:
    return _top(report.data["speedups"][machine])


CHECKS: List[ShapeCheck] = [
    ShapeCheck(
        "t1-dsm-overhead-nil", "t1",
        "TreadMarks adds ~nothing to single-processor times",
        lambda r: all(abs(v["treadmarks"] - v["dec"]) <= 0.02 * v["dec"]
                      for v in r.data.values())),
    ShapeCheck(
        "t1-sgi-slower-on-big-sor", "t1",
        "The SGI is >10% slower than the DEC when SOR exceeds its L2",
        lambda r: r.data["sor_large"]["sgi"] >
        1.1 * r.data["sor_large"]["dec"]),
    ShapeCheck(
        "t2-water-syncs-most", "t2",
        "Water has the highest remote-lock rate of the suite",
        lambda r: r.data["water"]["remote_locks_per_sec"] >=
        max(v["remote_locks_per_sec"] for k, v in r.data.items()
            if k != "water")),
    ShapeCheck(
        "t2-bad-beats-clp", "t2",
        "ILINK-BAD out-messages and out-barriers ILINK-CLP",
        lambda r: (r.data["ilink_bad"]["barriers_per_sec"] >
                   r.data["ilink_clp"]["barriers_per_sec"] and
                   r.data["ilink_bad"]["messages_per_sec"] >
                   r.data["ilink_clp"]["messages_per_sec"])),
    ShapeCheck(
        "fig3-treadmarks-wins-large-sor", "fig3",
        "Large SOR: better speedup on TreadMarks than on the SGI",
        lambda r: _speedup(r, "treadmarks") > _speedup(r, "sgi")),
    ShapeCheck(
        "fig5-sgi-leads-tsp", "fig5",
        "TSP: the SGI's fresher bound gives it the better speedup",
        lambda r: _speedup(r, "sgi") > _speedup(r, "treadmarks")),
    ShapeCheck(
        "fig7-water-no-speedup-on-dsm", "fig7",
        "Water: TreadMarks gets essentially no speedup; the SGI scales",
        lambda r: (_speedup(r, "treadmarks") < 1.0 and
                   _speedup(r, "sgi") > 3.0)),
    ShapeCheck(
        "fig8-mwater-recovers", "fig8",
        "M-Water: TreadMarks recovers real speedup vs Water",
        lambda r: _speedup(r, "treadmarks") > 1.5),
    ShapeCheck(
        "fig9-as-scales-worst-for-sor", "fig9",
        "Simulated SOR: AH and HS clearly above AS at the largest size",
        lambda r: min(_speedup(r, "ah"), _speedup(r, "hs8")) >
        1.5 * _speedup(r, "as")),
    ShapeCheck(
        "fig10-ordering", "fig10",
        "Simulated TSP: AH >= HS >= AS at the largest size",
        lambda r: _speedup(r, "ah") >= _speedup(r, "hs8") >=
        0.9 * _speedup(r, "as")),
    ShapeCheck(
        "fig11-ah-keeps-improving", "fig11",
        "Simulated M-Water: AH improves to the largest machine; "
        "AS peaks early; HS stays between AS and AH beyond one node",
        lambda r: (_speedup(r, "ah") ==
                   max(r.data["speedups"]["ah"].values()) and
                   max(r.data["speedups"]["as"],
                       key=r.data["speedups"]["as"].get) <= 16 and
                   _speedup(r, "as") <= _speedup(r, "hs8") <=
                   _speedup(r, "ah"))),
    ShapeCheck(
        "fig12-hs-message-reduction", "fig12",
        "HS sends a small fraction of AS's messages (SOR ~1/9)",
        lambda r: (r.data["sor_sim"]["hs_miss"] +
                   r.data["sor_sim"]["hs_sync"]) <
        0.25 * (r.data["sor_sim"]["as_miss"] +
                r.data["sor_sim"]["as_sync"])),
    ShapeCheck(
        "fig13-hs-data-reduction", "fig13",
        "HS moves a small fraction of AS's data for every workload",
        lambda r: all(sum(v["hs"].values()) < 0.5 * sum(v["as"].values())
                      for v in r.data.values())),
    ShapeCheck(
        "fig14-fixed-cost-dominates-sor", "fig14",
        "SOR/AS: cutting the fixed cost helps; cutting per-word adds "
        "almost nothing",
        lambda r: _fixed_dominates(r)),
    ShapeCheck(
        "x1-eager-recovers-tsp", "x1",
        "Eager release moves TSP's speedup toward the SGI's",
        lambda r: (r.data["treadmarks"]["speedup"] <
                   r.data["treadmarks-eager"]["speedup"] <=
                   1.15 * r.data["sgi"]["speedup"])),
    ShapeCheck(
        "x2-kernel-helps-mwater-most", "x2",
        "Kernel-level TreadMarks helps M-Water far more than ILINK",
        lambda r: (r.data["mwater"]["kernel"] / r.data["mwater"]["user"] >
                   r.data["ilink_clp"]["kernel"] /
                   r.data["ilink_clp"]["user"])),
    ShapeCheck(
        "x4-kernel-halves-sync-costs", "x4",
        "Kernel-level TreadMarks roughly halves lock and barrier times",
        lambda r: (0.3 < r.data["kernel-level"]["lock_ms"] /
                   r.data["user-level"]["lock_ms"] < 0.7 and
                   0.3 < r.data["kernel-level"]["barrier_ms"] /
                   r.data["user-level"]["barrier_ms"] < 0.7)),
    ShapeCheck(
        "x4-sync-magnitudes", "x4",
        "User-level remote lock is sub-millisecond; an 8-processor "
        "barrier is a couple of milliseconds",
        lambda r: (0.3 < r.data["user-level"]["lock_ms"] < 1.5 and
                   1.0 < r.data["user-level"]["barrier_ms"] < 4.0)),
    ShapeCheck(
        "x3-treadmarks-wins-even-alldirty", "x3",
        "SOR still favours TreadMarks when every point changes",
        lambda r: r.data["sor_alldirty"]["tm"] >
        r.data["sor_alldirty"]["sgi"]),
    ShapeCheck(
        "a1-diffs-cut-data", "a1",
        "Whole-page transfer moves at least 2x the diffed data",
        lambda r: all(
            r.data[f"{wl}|diffs=False"]["bytes"] >
            2 * r.data[f"{wl}|diffs=True"]["bytes"]
            for wl in ("sor_small", "mwater"))),
    ShapeCheck(
        "a2-eager-tradeoff", "a2",
        "Eager release helps TSP but sends more M-Water messages",
        lambda r: (r.data["tsp19"]["eager"] > r.data["tsp19"]["lazy"] and
                   r.data["mwater"]["eager_msgs"] >
                   r.data["mwater"]["lazy_msgs"])),
]


def _fixed_dominates(report: Report) -> bool:
    series = report.data["speedups"]
    by_label = {label: _top(points) for label, points in series.items()}
    base = by_label["fixed=2000,word=4"]
    low_fixed = by_label["fixed=100,word=4"]
    low_both = by_label["fixed=100,word=1"]
    fixed_gain = low_fixed - base
    word_gain = low_both - low_fixed
    return fixed_gain > 0 and word_gain < 0.5 * max(fixed_gain, 1e-9)


def run_validation(scale: Scale = Scale.BENCH,
                   checks: List[ShapeCheck] = None) -> List[tuple]:
    """Run the checks; returns ``[(check, passed), ...]``."""
    checks = checks if checks is not None else CHECKS
    reports: Dict[str, Report] = {}
    results = []
    for check in checks:
        if check.exp_id not in reports:
            reports[check.exp_id] = run_experiment(check.exp_id, scale)
        results.append((check, check.evaluate(reports[check.exp_id])))
    return results


def format_results(results: List[tuple]) -> List[str]:
    lines = []
    passed = 0
    for check, ok in results:
        status = "PASS" if ok else "FAIL"
        passed += ok
        lines.append(f"[{status}] {check.name:<34} ({check.exp_id}) "
                     f"{check.claim}")
    lines.append(f"{passed}/{len(results)} shape claims hold")
    return lines
