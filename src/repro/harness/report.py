"""Drift-detecting reproducibility reports: ``repro-harness report``.

The repository commits three kinds of numeric artifacts whose
credibility rests on being regenerable: the golden speedup pins
(``tests/golden/speedups.json``), per-figure data goldens
(``tests/golden/figures.json``), and the ``BENCH_*.json`` wall-clock
reports.  This module is the single pass that regenerates them
through the ambient :func:`~repro.harness.parallel.run_context` —
cache + ledger + pool — and fails loudly with a structured
:class:`Drift` diff when a regenerated number no longer matches what
is committed.

Because every run flows through the content-addressed cache and
appends a provenance-ledger record, the pass is *resumable*: a killed
report re-run schedules only the cache misses onto the pool, and the
ledger shows exactly which numbers were simulated afresh versus
served (``path="miss"``/``"hit"``), by which code version, on which
host.

Wall-clock BENCH files cannot be re-timed deterministically, so for
them the report checks *comparability* instead of values: every
``BENCH_*.json`` must carry the shared ``meta`` stamp
(:func:`benchmarks._common.bench_meta` — host, code revision,
versions) without which cross-machine comparison is meaningless.

``--write`` regenerates the committed goldens in place (the sanctioned
way to bless an intended behaviour change); at bench scale it also
rewrites ``benchmarks/results/<fig>.txt`` and regenerates
EXPERIMENTS.md, so figure text, goldens, and ledger stay one story.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.harness.experiments import REGISTRY, run_experiment
from repro.harness.runner import compare_machines
from repro.harness.workloads import Scale, make_app
from repro.machines import (AllHardwareMachine, AllSoftwareMachine,
                            DecTreadMarksMachine, HybridMachine,
                            SgiMachine)
from repro.stats.result import jsonable

#: The golden speedup-pin grid (shared with tests/test_golden.py).
PIN_WORKLOADS = ("sor_small", "tsp18", "water")
PIN_PROCS = (2, 8)

#: Figures the default report regenerates (small, fast, and covering
#: both machine families); ``--figures`` overrides.
DEFAULT_FIGURES = ("fig3", "fig6")

GOLDEN_SPEEDUPS = os.path.join("tests", "golden", "speedups.json")
GOLDEN_FIGURES = os.path.join("tests", "golden", "figures.json")

#: BENCH meta keys without which files are not comparable across
#: machines (see benchmarks/_common.py:bench_meta).
BENCH_META_KEYS = ("host", "code", "repro_version", "generated_utc")


# ======================================================================
# Regeneration
# ======================================================================
def _pin_machines():
    return [DecTreadMarksMachine(), SgiMachine(), AllSoftwareMachine(),
            AllHardwareMachine(), HybridMachine()]


def speedup_pin_data() -> Dict[str, Dict[str, Dict[str, Any]]]:
    """Current values of the golden speedup pins (TEST scale).

    Exactly the data pinned by ``tests/golden/speedups.json`` (and
    asserted by tests/test_golden.py, which imports this function):
    simulated cycle counts and derived speedups of the SOR / TSP /
    Water curves on all five machine models.  Runs execute through
    the ambient context, so under ``repro-harness report`` they are
    cached, ledger-recorded, and pooled.
    """
    data: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for workload in PIN_WORKLOADS:
        app = make_app(workload, Scale.TEST)
        for name, series in compare_machines(_pin_machines(), app,
                                             PIN_PROCS).items():
            data[f"{workload}/{name}"] = {
                "cycles": {str(r.nprocs): r.cycles
                           for r in series.points},
                "speedups": {str(n): round(s, 9)
                             for n, s in series.speedups().items()},
            }
    return data


def _canon(value: Any) -> Any:
    """Canonical JSON form: string keys, floats rounded to 9 places.

    Rounding matches the golden-pin convention — enough precision
    that any real behaviour change shows, while JSON round-trips
    byte-identically.
    """
    value = jsonable(value)
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(
            value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, list):
        return [_canon(v) for v in value]
    if isinstance(value, float):
        return round(value, 9)
    return value


def figure_data(exp_id: str, scale: Scale) -> Dict[str, Any]:
    """Canonicalized ``Report.data`` for one registry experiment."""
    return _canon(run_experiment(exp_id, scale).data)


# ======================================================================
# Drift detection
# ======================================================================
@dataclass(frozen=True)
class Drift:
    """One committed number that no longer regenerates."""

    artifact: str            # file the number is committed in
    key: str                 # dotted path within the artifact
    expected: Any            # committed value
    actual: Any              # regenerated value (None = missing)

    def as_dict(self) -> Dict[str, Any]:
        return {"artifact": self.artifact, "key": self.key,
                "expected": self.expected, "actual": self.actual}

    def line(self) -> str:
        return (f"[drift] {self.artifact} :: {self.key}: "
                f"committed {self.expected!r} != regenerated "
                f"{self.actual!r}")


def diff_values(artifact: str, expected: Any, actual: Any,
                prefix: str = "") -> List[Drift]:
    """Structural diff of two JSON-able values as a flat drift list."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        drifts: List[Drift] = []
        for key in sorted(set(expected) | set(actual), key=str):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in expected:
                drifts.append(Drift(artifact, path, None, actual[key]))
            elif key not in actual:
                drifts.append(Drift(artifact, path, expected[key], None))
            else:
                drifts.extend(diff_values(artifact, expected[key],
                                          actual[key], path))
        return drifts
    if isinstance(expected, list) and isinstance(actual, list):
        drifts = []
        if len(expected) != len(actual):
            drifts.append(Drift(artifact, f"{prefix}.length",
                                len(expected), len(actual)))
        for i, (e, a) in enumerate(zip(expected, actual)):
            drifts.extend(diff_values(artifact, e, a, f"{prefix}[{i}]"))
        return drifts
    if expected != actual:
        return [Drift(artifact, prefix or "<value>", expected, actual)]
    return []


@dataclass
class ReportOutcome:
    """Everything one report pass produced."""

    artifacts: List[str] = field(default_factory=list)
    drifts: List[Drift] = field(default_factory=list)
    written: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.drifts

    def drift_document(self) -> Dict[str, Any]:
        """The structured diff (what ``--drift-out`` writes)."""
        return {
            "ok": self.ok,
            "artifacts_checked": list(self.artifacts),
            "drift_count": len(self.drifts),
            "drifts": [d.as_dict() for d in self.drifts],
        }


# ======================================================================
# The report pass
# ======================================================================
def _load_json(path: str) -> Optional[Any]:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _write_json(path: str, payload: Any) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _check_artifact(outcome: ReportOutcome, artifact: str,
                    committed: Optional[Any], current: Any,
                    log: Callable[[str], None]) -> None:
    outcome.artifacts.append(artifact)
    if committed is None:
        outcome.drifts.append(Drift(artifact, "<file>",
                                    "<committed artifact>", None))
        log(f"[report] {artifact}: MISSING (run with --write to "
            f"create it)")
        return
    drifts = diff_values(artifact, committed, current)
    outcome.drifts.extend(drifts)
    status = "ok" if not drifts else f"{len(drifts)} drift(s)"
    log(f"[report] {artifact}: {status}")


def check_bench_meta(root: str = ".",
                     log: Callable[[str], None] = print
                     ) -> List[Drift]:
    """Every BENCH_*.json must carry the shared provenance stamp."""
    drifts: List[Drift] = []
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        name = os.path.basename(path)
        doc = _load_json(path)
        if not isinstance(doc, dict):
            drifts.append(Drift(name, "<file>", "valid JSON object",
                                None))
            continue
        meta = doc.get("meta")
        if not isinstance(meta, dict):
            drifts.append(Drift(name, "meta",
                                "bench_meta() stamp", None))
            continue
        for key in BENCH_META_KEYS:
            if key not in meta:
                drifts.append(Drift(name, f"meta.{key}",
                                    "<present>", None))
    log(f"[report] BENCH metadata: "
        f"{'ok' if not drifts else f'{len(drifts)} drift(s)'}")
    return drifts


def run_report(*, figures: Sequence[str] = DEFAULT_FIGURES,
               scale: Scale = Scale.TEST,
               root: str = ".",
               write: bool = False,
               log: Callable[[str], None] = print) -> ReportOutcome:
    """Regenerate committed artifacts and diff them against the repo.

    Call inside a :func:`~repro.harness.parallel.run_context` (and a
    ledger session) — every simulation is scheduled through it, so
    misses fan out over the pool and everything is recorded.
    """
    unknown = [f for f in figures if f not in REGISTRY]
    if unknown:
        raise ValueError(f"unknown figure ids: {unknown}; known: "
                         f"{sorted(REGISTRY)}")
    outcome = ReportOutcome()

    # -- golden speedup pins (always; they gate tier-1) -----------------
    pins_path = os.path.join(root, GOLDEN_SPEEDUPS)
    log(f"[report] regenerating golden speedup pins "
        f"({len(PIN_WORKLOADS)} workloads x 5 machines x "
        f"{len(PIN_PROCS) + 1} processor counts)")
    current_pins = speedup_pin_data()
    if write:
        _write_json(pins_path, current_pins)
        outcome.written.append(pins_path)
    _check_artifact(outcome, GOLDEN_SPEEDUPS, _load_json(pins_path),
                    current_pins, log)

    # -- figure data goldens --------------------------------------------
    figures_path = os.path.join(root, GOLDEN_FIGURES)
    committed_figures = _load_json(figures_path)
    if not isinstance(committed_figures, dict):
        committed_figures = {}
    scale_block = committed_figures.get(scale.value)
    current_figures: Dict[str, Any] = {}
    for exp_id in figures:
        log(f"[report] regenerating {exp_id} data "
            f"({REGISTRY[exp_id].paper_ref}, scale={scale.value})")
        current_figures[exp_id] = figure_data(exp_id, scale)
    if write:
        merged = dict(committed_figures)
        merged[scale.value] = {**(scale_block or {}), **current_figures}
        _write_json(figures_path, merged)
        outcome.written.append(figures_path)
        scale_block = merged[scale.value]
    for exp_id in figures:
        artifact = f"{GOLDEN_FIGURES}#{scale.value}/{exp_id}"
        committed = (scale_block or {}).get(exp_id)
        _check_artifact(outcome, artifact, committed,
                        current_figures[exp_id], log)

    # -- BENCH comparability stamps -------------------------------------
    outcome.artifacts.append("BENCH_*.json meta")
    outcome.drifts.extend(check_bench_meta(root, log))

    # -- bench-scale write mode: figure text + EXPERIMENTS.md -----------
    if write and scale is Scale.BENCH:
        results_dir = os.path.join(root, "benchmarks", "results")
        os.makedirs(results_dir, exist_ok=True)
        for exp_id in figures:
            report = run_experiment(exp_id, scale)   # cache-served
            note = REGISTRY[exp_id].shape_note
            path = os.path.join(results_dir, f"{exp_id}.txt")
            with open(path, "w") as fh:
                fh.write(f"{report.text()}\n[expected shape: {note}]\n")
            outcome.written.append(path)
        from repro.harness import experiments_md
        md_path = os.path.join(root, "EXPERIMENTS.md")
        with open(md_path, "w") as fh:
            fh.write(experiments_md.build(results_dir))
        outcome.written.append(md_path)
        log(f"[report] rewrote {len(figures)} figure archives and "
            f"EXPERIMENTS.md")

    status = ("CLEAN" if outcome.ok
              else f"DRIFT ({len(outcome.drifts)} value(s))")
    log(f"[report] {status}: {len(outcome.artifacts)} artifact(s) "
        f"checked" + (f", {len(outcome.written)} written"
                      if outcome.written else ""))
    for drift in outcome.drifts:
        log(drift.line())
    return outcome
