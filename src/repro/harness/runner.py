"""Shared run helpers: speedup curves and statistics collection.

Built on :mod:`repro.harness.parallel`: each helper *declares* its run
grid as a :class:`~repro.harness.parallel.RunPlan` and lets
``execute_plan`` fan the independent simulations out over worker
processes, deduplicate identical points, and serve repeats from the
result cache — all without changing a single number (see that
module's determinism contract).  Under an active
:func:`~repro.ledger.ledger_session`, every point additionally
appends a provenance record and every returned
:class:`~repro.stats.result.RunResult` carries its ledger ``run_id``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.apps.base import Application
from repro.harness.cache import ResultCache
from repro.harness.parallel import RunPlan, execute_plan
from repro.machines.base import Machine
from repro.stats.result import RunResult, SpeedupSeries

MachineFactory = Callable[[], Machine]


def speedup_series(machine: Machine, app: Application,
                   procs: Iterable[int], *,
                   base_result: Optional[RunResult] = None,
                   jobs: Optional[int] = None,
                   cache: Optional[ResultCache] = None
                   ) -> SpeedupSeries:
    """Run ``app`` at each processor count; speedups vs the 1-proc run.

    Baseline methodology (the paper's, §2.3): every speedup is
    relative to the *single-processor execution on the same machine
    family*.  For TreadMarks that baseline is indistinguishable from a
    plain workstation — at one node the protocol engages no remote
    machinery, sends no messages, and the lock token never moves —
    which is why Table 1's "DEC" and "DEC+TreadMarks" columns
    coincide.  Because of that, *every* software-DSM variant with the
    same local machine (user vs kernel level, lazy vs eager release,
    diffs vs whole pages, any overhead preset) shares one 1-processor
    baseline: the machines fingerprint identically at ``nprocs == 1``,
    so the run plan executes the baseline once and the result cache
    reuses it across machines and invocations rather than re-running
    it per variant.

    The 1-processor run is never executed twice: if ``1`` appears in
    ``procs`` it reuses the baseline (and if ``base_result`` is given,
    that exact object is placed in the series and no baseline run is
    scheduled at all).
    """
    procs = list(procs)
    plan = RunPlan()
    base_index: Optional[int] = None
    if base_result is None:
        base_index = plan.add(machine, app, 1)
    point_index: Dict[int, int] = {}
    for p in procs:
        if p == 1 and base_result is not None:
            continue
        if p not in point_index:
            point_index[p] = plan.add(machine, app, p)
    results = execute_plan(plan, jobs=jobs, cache=cache)

    base = base_result if base_result is not None else results[base_index]
    series = SpeedupSeries(machine.name, app.name, base.seconds)
    for p in procs:
        if p == 1 and base_result is not None:
            series.add(base)
        else:
            series.add(results[point_index[p]])
    return series


def compare_machines(machines: Iterable[Machine], app: Application,
                     procs: Iterable[int], *,
                     jobs: Optional[int] = None,
                     cache: Optional[ResultCache] = None
                     ) -> Dict[str, SpeedupSeries]:
    """One speedup series per machine, same workload.

    Declares the whole (machine x processor-count) grid as one plan,
    so runs fan out across machines as well as processor counts, and
    machines sharing 1-processor semantics share one baseline run.
    """
    machines = list(machines)
    procs = list(procs)
    plan = RunPlan()
    layout = []
    for machine in machines:
        base_index = plan.add(machine, app, 1)
        point_indices = [plan.add(machine, app, p) for p in procs]
        layout.append((machine, base_index, point_indices))
    results = execute_plan(plan, jobs=jobs, cache=cache)

    out: Dict[str, SpeedupSeries] = {}
    for machine, base_index, point_indices in layout:
        base = results[base_index]
        series = SpeedupSeries(machine.name, app.name, base.seconds)
        for index in point_indices:
            series.add(results[index])
        out[machine.name] = series
    return out
