"""Shared run helpers: speedup curves and statistics collection."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.apps.base import Application
from repro.machines.base import Machine
from repro.stats.result import RunResult, SpeedupSeries

MachineFactory = Callable[[], Machine]


def speedup_series(machine: Machine, app: Application,
                   procs: Iterable[int], *,
                   base_result: Optional[RunResult] = None
                   ) -> SpeedupSeries:
    """Run ``app`` at each processor count; speedups vs the 1-proc run.

    Follows the paper's methodology: the baseline is the
    single-processor execution on the same machine family (which for
    TreadMarks is indistinguishable from a plain workstation — the
    protocol engages no remote machinery at one node).
    """
    if base_result is None:
        base_result = machine.run(app, 1)
    series = SpeedupSeries(machine.name, app.name, base_result.seconds)
    for p in procs:
        result = base_result if p == 1 else machine.run(app, p)
        series.add(result)
    return series


def compare_machines(machines: Iterable[Machine], app: Application,
                     procs: Iterable[int]) -> Dict[str, SpeedupSeries]:
    """One speedup series per machine, same workload."""
    procs = list(procs)
    return {m.name: speedup_series(m, app, procs) for m in machines}
