"""The experiment registry: every table, figure, and ablation.

Each entry regenerates one artifact of the paper's evaluation.  The
ids follow DESIGN.md's experiment index: ``t1``/``t2`` (tables),
``fig1`` .. ``fig16`` (figures), ``x1`` .. ``x3`` (in-text
experiments), ``a1`` .. ``a3`` (ablations of design choices the paper
calls out).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.ablate import (MECHANISMS, AblationSpec, importance_score,
                          metric_deltas, run_metrics)
from repro.errors import ConfigurationError
from repro.harness import fmt
from repro.harness.parallel import RunPlan, execute_plan, run_grid
from repro.harness.runner import compare_machines, speedup_series
from repro.harness.workloads import (EXPERIMENTAL_PROCS, SIMULATED_PROCS,
                                     Scale, make_app)
from repro.machines import (AllHardwareMachine, AllSoftwareMachine,
                            DecTreadMarksMachine, HybridMachine, SgiMachine,
                            make_machine)
from repro.net.faults import CrashEvent, FaultPlan, FaultRule
from repro.net.overhead import OVERHEAD_SWEEP
from repro.stats.result import SpeedupSeries
from repro.sync import BARRIER_ALGORITHMS, LOCK_ALGORITHMS, SyncPolicy


@dataclass
class Report:
    """The output of one experiment run."""

    exp_id: str
    title: str
    lines: List[str] = field(default_factory=list)
    data: Dict = field(default_factory=dict)

    def text(self) -> str:
        header = f"== {self.exp_id}: {self.title} =="
        return "\n".join([header] + self.lines)


@dataclass(frozen=True)
class Experiment:
    exp_id: str
    title: str
    paper_ref: str
    shape_note: str
    run: Callable[[Scale], Report]


REGISTRY: Dict[str, Experiment] = {}


def _register(exp_id: str, title: str, paper_ref: str, shape_note: str):
    def wrap(fn: Callable[[Scale], Report]) -> Callable[[Scale], Report]:
        REGISTRY[exp_id] = Experiment(exp_id, title, paper_ref,
                                      shape_note, fn)
        return fn
    return wrap


def get_experiment(exp_id: str) -> Experiment:
    try:
        return REGISTRY[exp_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment '{exp_id}'; choose from "
            f"{sorted(REGISTRY)}") from None


ALL_WORKLOADS = ("ilink_clp", "ilink_bad", "sor_large", "sor_small",
                 "tsp19", "tsp18", "water", "mwater")

SIM_WORKLOADS = ("sor_sim", "tsp19", "mwater")


# ======================================================================
# Tables
# ======================================================================
@_register("t1", "Single-processor execution times",
           "Table 1",
           "DSM overhead at 1 processor is ~nil; the SGI is slower for "
           "working sets exceeding its L2, roughly equal otherwise.")
def run_t1(scale: Scale) -> Report:
    tm = DecTreadMarksMachine()
    sgi = SgiMachine()
    apps = {name: make_app(name, scale) for name in ALL_WORKLOADS}
    runs = run_grid(
        [(f"tm/{name}", tm, app, 1) for name, app in apps.items()] +
        [(f"sgi/{name}", sgi, app, 1) for name, app in apps.items()])
    rows = []
    data = {}
    for name, app in apps.items():
        t_tm = runs[f"tm/{name}"].seconds
        t_sgi = runs[f"sgi/{name}"].seconds
        # At one node TreadMarks engages no remote machinery, so the
        # plain-DEC and DEC+TreadMarks columns coincide (the paper
        # measured the same to within noise).
        rows.append([app.name, t_tm, t_tm, t_sgi, t_sgi / t_tm])
        data[name] = {"dec": t_tm, "treadmarks": t_tm, "sgi": t_sgi}
    report = Report("t1", "Single-processor execution times (seconds)")
    report.lines = fmt.format_table(
        ["program", "DEC", "DEC+TreadMarks", "SGI", "SGI/DEC"], rows)
    report.data = data
    return report


@_register("t2", "8-processor TreadMarks execution statistics",
           "Table 2",
           "Sync-rate ordering: Water >> M-Water > TSP-18 > TSP-19; "
           "ILINK-BAD >> ILINK-CLP in barrier and message rates.")
def run_t2(scale: Scale) -> Report:
    tm = DecTreadMarksMachine()
    apps = {name: make_app(name, scale) for name in ALL_WORKLOADS}
    runs = run_grid([(name, tm, app, 8) for name, app in apps.items()])
    rows = []
    data = {}
    for name, app in apps.items():
        r = runs[name]
        rows.append([app.name, r.barriers_per_sec, r.remote_locks_per_sec,
                     r.messages_per_sec, r.kbytes_per_sec])
        data[name] = r.summary()
    report = Report("t2", "8-processor TreadMarks execution statistics")
    report.lines = fmt.format_table(
        ["program", "barriers/s", "remote locks/s", "messages/s",
         "Kbytes/s"], rows)
    report.data = data
    return report


# ======================================================================
# Figures 1-8: TreadMarks vs SGI speedups
# ======================================================================
def _experimental_figure(exp_id: str, workload: str,
                         scale: Scale) -> Report:
    app_factory = lambda: make_app(workload, scale)  # noqa: E731
    machines = [DecTreadMarksMachine(), SgiMachine()]
    series = compare_machines(machines, app_factory(), EXPERIMENTAL_PROCS)
    speedups = {name: s.speedups() for name, s in series.items()}
    report = Report(exp_id, f"{app_factory().name} speedups, "
                            f"TreadMarks vs SGI 4D/480")
    report.lines = fmt.format_speedups(speedups, EXPERIMENTAL_PROCS)
    report.data = {"speedups": speedups,
                   "base_seconds": {n: s.base_seconds
                                    for n, s in series.items()}}
    return report


_EXPERIMENTAL_FIGURES = [
    ("fig1", "ilink_clp", "Figure 1", "SGI above TreadMarks; smallest "
     "ILINK gap (coarse grain, low barrier rate)."),
    ("fig2", "ilink_bad", "Figure 2", "SGI above TreadMarks; largest "
     "ILINK gap (fine grain, high barrier rate)."),
    ("fig3", "sor_large", "Figure 3", "TreadMarks above SGI: the 16 MB "
     "grid thrashes the SGI L2 and saturates its bus."),
    ("fig4", "sor_small", "Figure 4", "TreadMarks competitive with SGI "
     "even when the band fits the SGI L2 at 8 processors."),
    ("fig5", "tsp19", "Figure 5", "SGI above TreadMarks (fresher bound "
     "prunes better; occasional super-linear SGI runs)."),
    ("fig6", "tsp18", "Figure 6", "SGI above TreadMarks; slightly "
     "larger gap than the 19-city problem."),
    ("fig7", "water", "Figure 7", "TreadMarks gets essentially no "
     "speedup (per-update locks); SGI scales."),
    ("fig8", "mwater", "Figure 8", "TreadMarks recovers real speedup "
     "with batched updates; SGI nearly unchanged vs Water."),
]

for _fid, _wl, _ref, _note in _EXPERIMENTAL_FIGURES:
    def _make(fid=_fid, wl=_wl):
        def _run(scale: Scale) -> Report:
            return _experimental_figure(fid, wl, scale)
        return _run
    _register(_fid, f"{_wl} speedup (TreadMarks vs SGI)", _ref,
              _note)(_make())


# ======================================================================
# Figures 9-11: AS / AH / HS simulated speedups
# ======================================================================
def _sim_machines():
    return [AllHardwareMachine(), HybridMachine(), AllSoftwareMachine()]


def _sim_figure(exp_id: str, workload: str, scale: Scale) -> Report:
    procs = SIMULATED_PROCS[scale]
    app = make_app(workload, scale)
    series = compare_machines(_sim_machines(), app, (1,) + tuple(procs))
    speedups = {name: s.speedups() for name, s in series.items()}
    report = Report(exp_id, f"{app.name} on AH / HS / AS")
    report.lines = fmt.format_speedups(speedups, procs)
    report.data = {"speedups": speedups}
    return report


_SIM_FIGURES = [
    ("fig9", "sor_sim", "Figure 9", "AH and HS near-linear, AS "
     "sub-linear (nearest-neighbour sharing suits the hierarchy)."),
    ("fig10", "tsp19", "Figure 10", "AH ~ HS > AS; the gap opens as "
     "the compute-to-communication ratio shrinks with more CPUs."),
    ("fig11", "mwater", "Figure 11", "Only AH keeps improving; AS "
     "peaks earliest, HS peaks mid-range (synchronization bound)."),
]

for _fid, _wl, _ref, _note in _SIM_FIGURES:
    def _make_sim(fid=_fid, wl=_wl):
        def _run(scale: Scale) -> Report:
            return _sim_figure(fid, wl, scale)
        return _run
    _register(_fid, f"{_wl} on AH/HS/AS (simulation)", _ref,
              _note)(_make_sim())


# ======================================================================
# Figures 12-13: message and data totals, HS vs AS
# ======================================================================
_TRAFFIC_CACHE: Dict[Scale, tuple] = {}


def _traffic_runs(scale: Scale):
    """AS and HS runs at the largest machine (shared by fig12/fig13)."""
    cached = _TRAFFIC_CACHE.get(scale)
    if cached is not None:
        return cached
    procs = max(SIMULATED_PROCS[scale])
    entries = []
    for workload in SIM_WORKLOADS:
        app = make_app(workload, scale)
        entries.append((f"as/{workload}", AllSoftwareMachine(), app, procs))
        entries.append((f"hs/{workload}", HybridMachine(), app, procs))
    runs = run_grid(entries)
    out = {workload: {"as": runs[f"as/{workload}"],
                      "hs": runs[f"hs/{workload}"]}
           for workload in SIM_WORKLOADS}
    _TRAFFIC_CACHE[scale] = (procs, out)
    return procs, out


@_register("fig12", "Total messages, HS vs AS", "Figure 12",
           "HS sends a small fraction of AS's messages (1/4 .. 1/9, "
           "application dependent); sync messages shrink least.")
def run_fig12(scale: Scale) -> Report:
    procs, runs = _traffic_runs(scale)
    rows = []
    data = {}
    for workload, pair in runs.items():
        as_c, hs_c = pair["as"].counters, pair["hs"].counters
        total_as = max(1, as_c.total_messages)
        rows.append([
            workload,
            as_c.miss_messages, as_c.sync_messages,
            hs_c.miss_messages, hs_c.sync_messages,
            100.0 * hs_c.total_messages / total_as,
        ])
        data[workload] = {
            "as_miss": as_c.miss_messages, "as_sync": as_c.sync_messages,
            "hs_miss": hs_c.miss_messages, "hs_sync": hs_c.sync_messages,
        }
    report = Report("fig12", f"Total messages at {procs} processors "
                             f"(HS as % of AS)")
    report.lines = fmt.format_table(
        ["program", "AS miss", "AS sync", "HS miss", "HS sync",
         "HS % of AS"], rows)
    report.data = data
    return report


@_register("fig13", "Total data, HS vs AS", "Figure 13",
           "HS moves ~1/4 .. 1/8 of AS's data; diff coalescing cuts "
           "miss data, notice batching cuts consistency data.")
def run_fig13(scale: Scale) -> Report:
    procs, runs = _traffic_runs(scale)
    rows = []
    data = {}
    for workload, pair in runs.items():
        as_c, hs_c = pair["as"].counters, pair["hs"].counters
        total_as = max(1, as_c.total_bytes)
        rows.append([
            workload,
            as_c.miss_data_bytes // 1024, as_c.consistency_bytes // 1024,
            as_c.header_bytes // 1024,
            hs_c.miss_data_bytes // 1024, hs_c.consistency_bytes // 1024,
            hs_c.header_bytes // 1024,
            100.0 * hs_c.total_bytes / total_as,
        ])
        data[workload] = {
            "as": dict(miss=as_c.miss_data_bytes,
                       consistency=as_c.consistency_bytes,
                       header=as_c.header_bytes),
            "hs": dict(miss=hs_c.miss_data_bytes,
                       consistency=hs_c.consistency_bytes,
                       header=hs_c.header_bytes),
        }
    report = Report("fig13", f"Total data (KB) at {procs} processors "
                             f"(HS as % of AS)")
    report.lines = fmt.format_table(
        ["program", "AS miss", "AS cons", "AS hdr",
         "HS miss", "HS cons", "HS hdr", "HS % of AS"], rows)
    report.data = data
    return report


# ======================================================================
# Figures 14-16: software-overhead sweeps
# ======================================================================
def _overhead_sweep(exp_id: str, workload: str, hybrid: bool,
                    scale: Scale) -> Report:
    procs = SIMULATED_PROCS[scale]
    app = make_app(workload, scale)
    # One plan for the full (preset x processor-count) grid; the
    # sweep points fan out together and the shared 1-proc baseline
    # (AS presets only differ in messaging overheads) runs once.
    plan = RunPlan()
    layout = []
    for preset in OVERHEAD_SWEEP:
        if hybrid:
            machine = HybridMachine(
                HybridMachine().params.with_overhead(preset))
        else:
            machine = AllSoftwareMachine(overhead_preset=preset)
        indices = plan.add_series(machine, app, (1,) + tuple(procs))
        ov = preset.build()
        label = (f"fixed={ov.fixed_send_cycles}"
                 f",word={ov.per_word_cycles}")
        layout.append((label, machine, indices))
    results = execute_plan(plan)
    speedups: Dict[str, Dict[int, float]] = {}
    for label, machine, indices in layout:
        base = results[indices[0]]
        series = SpeedupSeries(machine.name, app.name, base.seconds)
        for index in indices:
            series.add(results[index])
        speedups[label] = series.speedups()
    arch = "HS" if hybrid else "AS"
    report = Report(exp_id, f"{workload} on {arch}, software-overhead "
                            f"sweep")
    report.lines = fmt.format_speedups(speedups, procs)
    report.data = {"speedups": speedups}
    return report


@_register("fig14", "Overhead sweep: AS, SOR", "Figure 14",
           "Fixed per-message cost dominates SOR on AS; reducing it "
           "brings AS near AH/HS.")
def run_fig14(scale: Scale) -> Report:
    return _overhead_sweep("fig14", "sor_sim", False, scale)


@_register("fig15", "Overhead sweep: AS, M-Water", "Figure 15",
           "Fixed and per-word costs matter about equally for M-Water "
           "on AS.")
def run_fig15(scale: Scale) -> Report:
    return _overhead_sweep("fig15", "mwater", False, scale)


@_register("fig16", "Overhead sweep: HS, M-Water", "Figure 16",
           "On HS the fixed cost matters more than per-word (diff "
           "coalescing already cut the data volume).")
def run_fig16(scale: Scale) -> Report:
    return _overhead_sweep("fig16", "mwater", True, scale)


# ======================================================================
# In-text experiments
# ======================================================================
@_register("x1", "TSP with eager lock release", "§2.4.3",
           "Eager release propagates the bound at release time and "
           "recovers most of the SGI gap.")
def run_x1(scale: Scale) -> Report:
    app_name = "tsp19"
    machines = [
        DecTreadMarksMachine(),
        DecTreadMarksMachine(eager_locks=frozenset({1})),  # bound lock
        SgiMachine(),
    ]
    rows = []
    data = {}
    for machine in machines:
        app = make_app(app_name, scale)
        series = speedup_series(machine, app, EXPERIMENTAL_PROCS)
        top = series.speedups()[max(EXPERIMENTAL_PROCS)]
        result = series.at(max(EXPERIMENTAL_PROCS))
        expansions = result.app_output.get("parallel_expansions", 0)
        rows.append([machine.name, top, expansions])
        data[machine.name] = {"speedup": top, "expansions": expansions}
    report = Report("x1", "TSP: lazy vs eager release vs SGI "
                          "(8 processors)")
    report.lines = fmt.format_table(
        ["machine", "speedup@8", "expansions"], rows)
    report.data = data
    return report


@_register("x2", "Kernel-level TreadMarks", "§2.4.4",
           "Kernel-level messaging sharply improves M-Water; barrier "
           "apps (ILINK, SOR) barely change.")
def run_x2(scale: Scale) -> Report:
    rows = []
    data = {}
    for workload in ("sor_small", "ilink_clp", "tsp19", "mwater"):
        user = speedup_series(DecTreadMarksMachine(),
                              make_app(workload, scale),
                              EXPERIMENTAL_PROCS)
        kernel = speedup_series(DecTreadMarksMachine(kernel_level=True),
                                make_app(workload, scale),
                                EXPERIMENTAL_PROCS)
        sgi = speedup_series(SgiMachine(), make_app(workload, scale),
                             EXPERIMENTAL_PROCS)
        p = max(EXPERIMENTAL_PROCS)
        rows.append([workload, user.speedups()[p], kernel.speedups()[p],
                     sgi.speedups()[p]])
        data[workload] = {"user": user.speedups()[p],
                          "kernel": kernel.speedups()[p],
                          "sgi": sgi.speedups()[p]}
    report = Report("x2", "User-level vs kernel-level TreadMarks "
                          "(speedup at 8 processors)")
    report.lines = fmt.format_table(
        ["program", "user-level", "kernel-level", "SGI"], rows)
    report.data = data
    return report


@_register("x3", "SOR with every point changing", "§2.3/§2.4.2",
           "Equalizing data movement: TreadMarks moves far more data "
           "than with the zero interior, but still beats the SGI.")
def run_x3(scale: Scale) -> Report:
    rows = []
    data = {}
    for workload in ("sor_large", "sor_alldirty"):
        app = make_app(workload, scale)
        tm = speedup_series(DecTreadMarksMachine(), app,
                            EXPERIMENTAL_PROCS)
        sgi = speedup_series(SgiMachine(), make_app(workload, scale),
                             EXPERIMENTAL_PROCS)
        p = max(EXPERIMENTAL_PROCS)
        tm_top = tm.at(p)
        rows.append([app.name, tm.speedups()[p], sgi.speedups()[p],
                     tm_top.counters.total_bytes // 1024])
        data[workload] = {"tm": tm.speedups()[p],
                          "sgi": sgi.speedups()[p],
                          "tm_kbytes": tm_top.counters.total_bytes / 1024}
    report = Report("x3", "SOR data-movement control experiment "
                          "(8 processors)")
    report.lines = fmt.format_table(
        ["program", "TreadMarks sp", "SGI sp", "TM total KB"], rows)
    report.data = data
    return report


class _BarrierOnlyApp:
    """Micro-benchmark: every processor hits one barrier."""

    name = "sync-barrier"

    def regions(self, nprocs):
        return {"pad": 4096}

    def init_data(self, ctx):
        pass

    def programs(self, ctx):
        from repro.apps import ops

        def prog():
            yield ops.Barrier()
        return [prog() for _ in range(ctx.nprocs)]

    def verify(self, ctx):
        return {}

    def check_nprocs(self, nprocs):
        pass


class _LockPingApp:
    """Micro-benchmark: one cold remote lock acquisition.

    Lock 0's manager is node 0; node 2 takes and releases the token
    first, so node 1's later acquisition walks the full three-message
    path (request to the manager, forward to the holder, grant back).
    The warm-up delay keeps the phases strictly ordered.
    """

    name = "sync-lock"
    DELAY = 1_000_000

    def regions(self, nprocs):
        return {"pad": 4096}

    def init_data(self, ctx):
        pass

    def programs(self, ctx):
        from repro.apps import ops

        def manager_node():
            yield ops.Compute(1)

        def first_holder():
            yield ops.Acquire(0)
            yield ops.Release(0)

        def requester():
            yield ops.Compute(self.DELAY)
            yield ops.Acquire(0)
            yield ops.Release(0)
        return [manager_node(), requester(), first_holder()]

    def verify(self, ctx):
        return {}

    def check_nprocs(self, nprocs):
        pass


@_register("x4", "Synchronization micro-costs", "§2.2 / §2.4.4",
           "Minimum remote lock acquisition and 8-processor barrier "
           "times; the kernel-level implementation roughly halves "
           "both.")
def run_x4(scale: Scale) -> Report:
    rows = []
    data = {}
    for label, machine in (
            ("user-level", DecTreadMarksMachine()),
            ("kernel-level", DecTreadMarksMachine(kernel_level=True))):
        lock_run = machine.run(_LockPingApp(), 3)
        lock_cycles = lock_run.cycles - _LockPingApp.DELAY
        lock_ms = 1e3 * lock_cycles / machine.clock_hz
        barrier_run = machine.run(_BarrierOnlyApp(), 8)
        barrier_ms = 1e3 * barrier_run.seconds
        rows.append([label, lock_ms, barrier_ms])
        data[label] = {"lock_ms": lock_ms, "barrier_ms": barrier_ms}
    report = Report("x4", "Remote lock and 8-processor barrier times "
                          "(milliseconds)")
    report.lines = fmt.format_table(
        ["implementation", "remote lock (ms)", "8-proc barrier (ms)"],
        rows)
    report.data = data
    return report


# ======================================================================
# Ablations
# ======================================================================
@_register("a1", "Diffs vs whole-page transfer", "DESIGN.md A1",
           "Whole-page transfers multiply data movement for "
           "fine-grain-write applications.")
def run_a1(scale: Scale) -> Report:
    rows = []
    data = {}
    for workload in ("sor_small", "mwater"):
        for use_diffs in (True, False):
            machine = DecTreadMarksMachine(use_diffs=use_diffs)
            app = make_app(workload, scale)
            series = speedup_series(machine, app, (1, 8))
            p8 = series.at(8)
            rows.append([app.name, machine.name, series.speedups()[8],
                         p8.counters.total_bytes // 1024])
            data[(workload, use_diffs)] = {
                "speedup": series.speedups()[8],
                "bytes": p8.counters.total_bytes,
            }
    report = Report("a1", "Diff-based vs whole-page data movement "
                          "(8 processors)")
    report.lines = fmt.format_table(
        ["program", "machine", "speedup@8", "total KB"], rows)
    report.data = {f"{k[0]}|diffs={k[1]}": v for k, v in data.items()}
    return report


@_register("a2", "Lazy vs eager release across applications",
           "DESIGN.md A2",
           "Eager release helps the unsynchronized-read pattern (TSP) "
           "and hurts high-lock-rate applications (more messages).")
def run_a2(scale: Scale) -> Report:
    rows = []
    data = {}
    for workload in ("tsp19", "mwater", "sor_small"):
        lazy = speedup_series(DecTreadMarksMachine(),
                              make_app(workload, scale), (1, 8))
        eager = speedup_series(DecTreadMarksMachine(eager_locks="all"),
                               make_app(workload, scale), (1, 8))
        rows.append([workload, lazy.speedups()[8], eager.speedups()[8],
                     lazy.at(8).counters.total_messages,
                     eager.at(8).counters.total_messages])
        data[workload] = {
            "lazy": lazy.speedups()[8], "eager": eager.speedups()[8],
            "lazy_msgs": lazy.at(8).counters.total_messages,
            "eager_msgs": eager.at(8).counters.total_messages,
        }
    report = Report("a2", "Lazy vs eager release (8 processors)")
    report.lines = fmt.format_table(
        ["program", "lazy sp", "eager sp", "lazy msgs", "eager msgs"],
        rows)
    report.data = data
    return report


@_register("a3", "HS node-size sweep", "DESIGN.md A3",
           "Larger nodes cut messages; returns diminish once the node "
           "bus and the per-node DSM serialize.")
def run_a3(scale: Scale) -> Report:
    procs = max(SIMULATED_PROCS[scale])
    rows = []
    data = {}
    for node_size in (1, 2, 4, 8, 16):
        from dataclasses import replace
        params = replace(HybridMachine().params, procs_per_node=node_size)
        machine = HybridMachine(params)
        for workload in ("sor_small", "mwater"):
            app = make_app(workload, scale)
            series = speedup_series(machine, app, (1, procs))
            r = series.at(procs)
            rows.append([workload, node_size, series.speedups()[procs],
                         r.counters.total_messages])
            data[(workload, node_size)] = {
                "speedup": series.speedups()[procs],
                "messages": r.counters.total_messages,
            }
    report = Report("a3", f"HS node-size sweep at {procs} processors")
    report.lines = fmt.format_table(
        ["program", "procs/node", "speedup", "messages"], rows)
    report.data = {f"{k[0]}|node={k[1]}": v for k, v in data.items()}
    return report


# ======================================================================
# Robustness: the fault sweep
# ======================================================================

#: Loss rates swept by ``fault-sweep`` unless overridden via
#: :func:`fault_sweep_options` (the CLI's ``--loss-rate`` flags).
DEFAULT_LOSS_RATES: Tuple[float, ...] = (0.0, 0.005, 0.02, 0.05)

#: One bandwidth-bound, one sync-light, one lock-heavy workload — the
#: three degradation regimes loss can expose.
FAULT_SWEEP_WORKLOADS: Tuple[str, ...] = ("sor_small", "tsp19", "mwater")


@dataclass(frozen=True)
class FaultSweepOptions:
    """Parameters of the ``fault-sweep`` experiment."""

    loss_rates: Tuple[float, ...] = DEFAULT_LOSS_RATES
    seed: int = 42
    schedule: Tuple[FaultRule, ...] = ()

    def plan(self, rate: float) -> FaultPlan:
        return FaultPlan(loss_rate=rate, seed=self.seed,
                         schedule=self.schedule)


_fault_options: List[FaultSweepOptions] = []


@contextmanager
def fault_sweep_options(**kwargs):
    """Ambient overrides for ``fault-sweep`` (mirrors ``run_context``)."""
    opts = FaultSweepOptions(**kwargs)
    _fault_options.append(opts)
    try:
        yield opts
    finally:
        _fault_options.pop()


def current_fault_options() -> FaultSweepOptions:
    return _fault_options[-1] if _fault_options else FaultSweepOptions()


@_register("fault-sweep", "Speedup vs. network loss rate (TreadMarks)",
           "robustness",
           "Speedup decays monotonically as loss rises; retransmission "
           "and duplicate counters grow from zero; no run hangs.")
def run_fault_sweep(scale: Scale) -> Report:
    opts = current_fault_options()
    procs = max(EXPERIMENTAL_PROCS)
    # One plan for the (workload x loss-rate) grid.  The rate-0 plan is
    # *disabled*, so its machine fingerprints — and cache entries —
    # coincide with the lossless TreadMarks runs of t1/t2/fig3-8: the
    # zero-overhead-when-disabled invariant, asserted by CI.
    plan = RunPlan()
    layout = []
    for workload in FAULT_SWEEP_WORKLOADS:
        app = make_app(workload, scale)
        base_index = plan.add(DecTreadMarksMachine(), app, 1)
        entries = []
        for rate in opts.loss_rates:
            machine = DecTreadMarksMachine(faults=opts.plan(rate))
            entries.append((rate, plan.add(machine, app, procs)))
        layout.append((workload, base_index, entries))
    results = execute_plan(plan)

    rows = []
    data: Dict[str, Dict] = {}
    for workload, base_index, entries in layout:
        base = results[base_index]
        for rate, index in entries:
            r = results[index]
            speedup = base.seconds / r.seconds
            c = r.counters
            rows.append([workload, rate, speedup, c.retransmissions,
                         c.duplicates_dropped, c.timeout_cycles])
            data.setdefault(workload, {})[f"{rate:g}"] = {
                "speedup": speedup,
                "retransmissions": c.retransmissions,
                "duplicates_dropped": c.duplicates_dropped,
                "messages_dropped": c.messages_dropped,
                "timeout_cycles": c.timeout_cycles,
            }
    report = Report("fault-sweep",
                    f"TreadMarks speedup at {procs} processors vs. "
                    f"message loss rate (fault seed {opts.seed})")
    report.lines = fmt.format_table(
        ["program", "loss rate", "speedup", "retransmits",
         "dups dropped", "timeout cycles"], rows)
    report.data = data
    return report


# ======================================================================
# Robustness: the failure sweep (crash-stop recovery)
# ======================================================================

#: Fractions of the *clean* run's length at which the crash lands —
#: early (recovery cost amortized over most of the run) and midway.
DEFAULT_CRASH_FRACS: Tuple[float, ...] = (0.25, 0.5)

#: One barrier-structured and one lock-structured workload; crashes
#: stress the two recovery paths (barrier reconfiguration vs lock
#: token regeneration) differently.
FAILURE_SWEEP_WORKLOADS: Tuple[str, ...] = ("sor_sim", "tsp19")

#: The two software-DSM simulated architectures.  Hardware machines
#: reject crash plans outright (no recovery story), so they are not
#: sweepable here.
FAILURE_SWEEP_MACHINES: Tuple[str, ...] = ("as", "hs")


@dataclass(frozen=True)
class FailureSweepOptions:
    """Parameters of the ``failure-sweep`` experiment.

    ``crashes`` (the CLI's ``--crash``) overrides the derived schedule:
    when non-empty, every cell runs with exactly these events instead
    of one crash at each ``fracs`` fraction of the clean run.
    """

    fracs: Tuple[float, ...] = DEFAULT_CRASH_FRACS
    workloads: Tuple[str, ...] = FAILURE_SWEEP_WORKLOADS
    machines: Tuple[str, ...] = FAILURE_SWEEP_MACHINES
    crashes: Tuple[CrashEvent, ...] = ()
    detect_cycles: int = 1_000_000


_failure_options: List[FailureSweepOptions] = []


@contextmanager
def failure_sweep_options(**kwargs):
    """Ambient overrides for ``failure-sweep`` (mirrors ``run_context``)."""
    opts = FailureSweepOptions(**kwargs)
    _failure_options.append(opts)
    try:
        yield opts
    finally:
        _failure_options.pop()


def current_failure_options() -> FailureSweepOptions:
    return _failure_options[-1] if _failure_options else FailureSweepOptions()


def _sweep_num_nodes(mname: str, machine, procs: int) -> int:
    """DSM node count of a sweep cell (crash targets are *nodes*)."""
    if mname == "hs":
        per_node = machine.params.procs_per_node
        return max(1, procs // per_node)
    return procs


@_register("failure-sweep",
           "Degraded completion under crash-stop node failures",
           "robustness",
           "Every crashed cell completes degraded on n-1 nodes with "
           "byte-identical summaries across serial/pool/warm-cache; "
           "detection latency is bounded by the keepalive backstop and "
           "recovery counters (pages rehomed/lost, locks regenerated, "
           "barrier reconfigs) come out non-zero.")
def run_failure_sweep(scale: Scale) -> Report:
    opts = current_failure_options()
    procs = max(SIMULATED_PROCS[scale])

    # Phase 1: the clean cells.  These coincide (fingerprints and all)
    # with fig9/fig10 points, so a warm cache serves them; their cycle
    # counts deterministically place the crashes of phase 2.
    clean_plan = RunPlan()
    clean_layout = []
    for mname in opts.machines:
        for workload in opts.workloads:
            app = make_app(workload, scale)
            machine = make_machine(mname)
            base_index = clean_plan.add(machine, app, 1)
            clean_index = clean_plan.add(machine, app, procs)
            clean_layout.append((mname, workload, base_index, clean_index))
    clean_results = execute_plan(clean_plan)

    # Phase 2: the crashed cells.  Unless --crash pinned an explicit
    # schedule, the last DSM node crashes at each configured fraction
    # of the clean run — a pure function of phase 1, so the whole
    # sweep stays deterministic and cacheable.
    plan = RunPlan()
    layout = []
    for mname, workload, base_index, clean_index in clean_layout:
        clean = clean_results[clean_index]
        app = make_app(workload, scale)
        num_nodes = _sweep_num_nodes(mname, make_machine(mname), procs)
        if num_nodes < 2:
            continue                  # no survivor would remain
        if opts.crashes:
            schedules = [("explicit", opts.crashes)]
        else:
            schedules = [
                (f"{frac:g}",
                 (CrashEvent(num_nodes - 1, int(frac * clean.cycles)),))
                for frac in opts.fracs]
        for tag, crashes in schedules:
            faults = FaultPlan(crashes=crashes,
                               detect_cycles=opts.detect_cycles)
            machine = make_machine(mname, faults=faults)
            index = plan.add(machine, app, procs)
            layout.append((mname, workload, tag, crashes, base_index,
                           clean_index, index))
    results = execute_plan(plan)

    rows = []
    data: Dict[str, Dict] = {}
    for (mname, workload, tag, crashes, base_index, clean_index,
         index) in layout:
        base = clean_results[base_index]
        clean = clean_results[clean_index]
        r = results[index]
        c = r.counters
        degraded = r.degraded or {}
        speedup = base.seconds / r.seconds
        clean_speedup = base.seconds / clean.seconds
        rows.append([mname, workload, tag,
                     len(degraded.get("failed_nodes", ())),
                     speedup, clean_speedup, c.detection_cycles,
                     c.pages_rehomed, c.pages_lost, c.locks_regenerated,
                     c.barrier_reconfigs])
        data.setdefault(workload, {}).setdefault(mname, {})[tag] = {
            "speedup": speedup,
            "clean_speedup": clean_speedup,
            "degraded": degraded,
            "crashes": [{"node": e.node, "at": e.at, "rejoin": e.rejoin}
                        for e in crashes],
            "detection_cycles": c.detection_cycles,
            "pages_rehomed": c.pages_rehomed,
            "pages_lost": c.pages_lost,
            "locks_regenerated": c.locks_regenerated,
            "barrier_reconfigs": c.barrier_reconfigs,
        }
    report = Report("failure-sweep",
                    f"Crash-stop recovery at {procs} processors "
                    f"(detect backstop {opts.detect_cycles} cycles)")
    report.lines = fmt.format_table(
        ["machine", "program", "crash", "failed", "degraded sp",
         "clean sp", "detect cyc", "rehomed", "lost", "locks",
         "barriers"], rows)
    report.data = data
    return report


# ======================================================================
# The synchronization design space: the sync sweep
# ======================================================================

#: One lock-heavy and one barrier-heavy workload — the two traffic
#: patterns the lock and barrier axes of the design space stress.
SYNC_SWEEP_WORKLOADS: Tuple[str, ...] = ("tsp18", "mwater")

#: The three simulated large-scale architectures; the experimental
#: machines can be swept too (``sync_sweep_options(machines=...)``)
#: but cap at 8 processors where the policies barely separate.
SYNC_SWEEP_MACHINES: Tuple[str, ...] = ("as", "ah", "hs")


@dataclass(frozen=True)
class SyncSweepOptions:
    """Parameters of the ``sync-sweep`` experiment."""

    locks: Tuple[str, ...] = LOCK_ALGORITHMS
    barriers: Tuple[str, ...] = BARRIER_ALGORITHMS
    workloads: Tuple[str, ...] = SYNC_SWEEP_WORKLOADS
    machines: Tuple[str, ...] = SYNC_SWEEP_MACHINES

    def policies(self) -> List[SyncPolicy]:
        return [SyncPolicy(lock=lk, barrier=bar)
                for lk in self.locks for bar in self.barriers]


_sync_options: List[SyncSweepOptions] = []


@contextmanager
def sync_sweep_options(**kwargs):
    """Ambient overrides for ``sync-sweep`` (mirrors ``run_context``)."""
    opts = SyncSweepOptions(**kwargs)
    _sync_options.append(opts)
    try:
        yield opts
    finally:
        _sync_options.pop()


def current_sync_options() -> SyncSweepOptions:
    return _sync_options[-1] if _sync_options else SyncSweepOptions()


@_register("sync-sweep",
           "Speedup across the lock x barrier design space",
           "DESIGN.md §sync",
           "Tree/combining barriers lift the software machines at high "
           "processor counts (the centralized manager's O(n) handler "
           "serialization is the bottleneck they remove); lock choice "
           "barely moves DSM apps.  AH is nearly flat across policies.")
def run_sync_sweep(scale: Scale) -> Report:
    opts = current_sync_options()
    procs = tuple(SIMULATED_PROCS[scale])
    top = max(procs)
    policies = opts.policies()
    # One plan for the whole (machine x workload x policy) grid.  The
    # 1-processor baselines dedup across policies: a software machine's
    # uniprocessor fingerprint hides everything non-local, including
    # the sync policy, so each (machine, workload) baseline runs once.
    plan = RunPlan()
    layout = []
    for mname in opts.machines:
        for workload in opts.workloads:
            app = make_app(workload, scale)
            for policy in policies:
                machine = make_machine(mname, sync=policy)
                indices = plan.add_series(machine, app, (1,) + procs)
                layout.append((mname, workload, policy, machine, indices))
    results = execute_plan(plan)

    rows = []
    data: Dict[str, Dict] = {}
    for mname, workload, policy, machine, indices in layout:
        base = results[indices[0]]
        series = SpeedupSeries(machine.name, workload, base.seconds)
        for index in indices:
            series.add(results[index])
        r_top = series.at(top)
        c = r_top.counters
        rows.append([mname, workload, policy.label(),
                     series.speedups()[top], c.combining_hits])
        data.setdefault(workload, {}).setdefault(mname, {})[
            policy.label()] = {
            "speedups": {str(p): s for p, s in series.speedups().items()},
            "seconds": r_top.seconds,
            "combining_hits": c.combining_hits,
            "lock_wait_cycles": c.lock_wait_cycles,
            "lock_hold_cycles": c.lock_hold_cycles,
            "sync_messages": c.sync_messages,
        }

    # The crossover view: how close the best software-machine policy
    # brings AS/HS to AH's default at the largest machine.
    summary: Dict[str, Dict] = {}
    for workload, machines in data.items():
        ah = machines.get("ah", {}).get("token+central")
        for mname in ("as", "hs"):
            cells = machines.get(mname)
            if not cells or "token+central" not in cells:
                continue
            default_sp = cells["token+central"]["speedups"][str(top)]
            best_label, best = max(
                cells.items(),
                key=lambda kv: kv[1]["speedups"][str(top)])
            best_sp = best["speedups"][str(top)]
            summary[f"{workload}/{mname}"] = {
                "default": default_sp,
                "best": best_sp,
                "best_policy": best_label,
                "gain": best_sp / default_sp if default_sp else 0.0,
                "ah_default": (ah["speedups"][str(top)] if ah else None),
            }

    report = Report("sync-sweep",
                    f"Lock x barrier design space at up to {top} "
                    f"processors")
    report.lines = fmt.format_table(
        ["machine", "program", "policy", f"speedup@{top}",
         "combining hits"], rows)
    report.lines.append("")
    for key, s in summary.items():
        report.lines.append(
            f"{key}: default {s['default']:.2f} -> best "
            f"{s['best']:.2f} ({s['best_policy']}, "
            f"{100 * (s['gain'] - 1):+.1f}%)")
    report.data = {"cells": data, "summary": summary, "top_procs": top}
    return report


# ======================================================================
# The mechanism design space: the ablation sweep
# ======================================================================

#: One barrier-heavy, one branch-and-bound, one lock-heavy workload —
#: each DSM mechanism earns its keep on a different traffic pattern.
ABLATION_SWEEP_WORKLOADS: Tuple[str, ...] = ("sor_sim", "tsp19", "mwater")

#: The two software-DSM simulated architectures.  The hardware
#: machines have none of the ablatable mechanisms and reject
#: non-default specs.
ABLATION_SWEEP_MACHINES: Tuple[str, ...] = ("as", "hs")

#: Supported spec grids: ``loo`` (leave one mechanism out of the full
#: protocol) and ``only`` (keep one mechanism, strip the rest).
ABLATION_GRIDS: Tuple[str, ...] = ("loo", "only")


@dataclass(frozen=True)
class AblationSweepOptions:
    """Parameters of the ``ablation-sweep`` experiment."""

    mechanisms: Tuple[str, ...] = MECHANISMS
    workloads: Tuple[str, ...] = ABLATION_SWEEP_WORKLOADS
    machines: Tuple[str, ...] = ABLATION_SWEEP_MACHINES
    grids: Tuple[str, ...] = ("loo",)
    #: The backoff mechanism is inert on a lossless network, so its
    #: cells run under a small-loss fault plan (ablated *and* its
    #: full-protocol baseline, keeping the comparison paired).
    loss_rate: float = 0.01
    fault_seed: int = 42

    def __post_init__(self) -> None:
        for mech in self.mechanisms:
            if mech not in MECHANISMS:
                raise ConfigurationError(
                    f"unknown mechanism '{mech}'; choose from "
                    f"{', '.join(MECHANISMS)}")
        for grid in self.grids:
            if grid not in ABLATION_GRIDS:
                raise ConfigurationError(
                    f"unknown ablation grid '{grid}'; choose from "
                    f"{', '.join(ABLATION_GRIDS)}")

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(loss_rate=self.loss_rate, seed=self.fault_seed)

    def specs(self, grid: str) -> List[Tuple[str, AblationSpec]]:
        """(mechanism, spec) cells of one grid, in mechanism order."""
        if grid == "loo":
            return [(m, AblationSpec.without(m)) for m in self.mechanisms]
        return [(m, AblationSpec.only(m)) for m in self.mechanisms]


_ablation_options: List[AblationSweepOptions] = []


@contextmanager
def ablation_sweep_options(**kwargs):
    """Ambient overrides for ``ablation-sweep`` (mirrors ``run_context``)."""
    opts = AblationSweepOptions(**kwargs)
    _ablation_options.append(opts)
    try:
        yield opts
    finally:
        _ablation_options.pop()


def current_ablation_options() -> AblationSweepOptions:
    return _ablation_options[-1] if _ablation_options else \
        AblationSweepOptions()


@_register("ablation-sweep",
           "Per-mechanism importance over the DSM protocol",
           "DESIGN.md §8",
           "Lazy diff fetching dominates on barrier-heavy SOR (eager "
           "fetching refetches every invalidated page per sync); "
           "diffs/twins matter most where pages are sparsely written "
           "(Water); piggybacking saves a message per sync pair; "
           "backoff only separates under loss.")
def run_ablation_sweep(scale: Scale) -> Report:
    opts = current_ablation_options()
    top = max(SIMULATED_PROCS[scale])

    # One plan for the whole grid.  Each (machine, workload) gets a
    # full-protocol baseline; each swept mechanism gets one ablated
    # cell per grid against that baseline.  Backoff cells (loo grid)
    # pair a lossy ablated run with a lossy full-protocol baseline.
    plan = RunPlan()
    layout: List[Tuple] = []
    for mname in opts.machines:
        for workload in opts.workloads:
            app = make_app(workload, scale)
            full_index = plan.add(make_machine(mname), app, top)
            faulty_full_index = None
            if "backoff" in opts.mechanisms and "loo" in opts.grids:
                faulty_full_index = plan.add(
                    make_machine(mname, faults=opts.fault_plan()),
                    app, top)
            for grid in opts.grids:
                for mech, spec in opts.specs(grid):
                    if grid == "loo" and mech == "backoff":
                        index = plan.add(
                            make_machine(mname, faults=opts.fault_plan(),
                                         ablate=spec), app, top)
                        base_index = faulty_full_index
                    else:
                        index = plan.add(
                            make_machine(mname, ablate=spec), app, top)
                        base_index = full_index
                    layout.append((mname, workload, grid, mech, spec,
                                   base_index, index))
    results = execute_plan(plan)

    rows = []
    cells: Dict[str, Dict] = {}
    #: mechanism -> list of (score, cell key, deltas) over loo cells.
    loo_scores: Dict[str, List[Tuple[float, str, Dict[str, float]]]] = {}
    for mname, workload, grid, mech, spec, base_index, index in layout:
        full = run_metrics(results[base_index])
        ablated = run_metrics(results[index])
        deltas = metric_deltas(full, ablated)
        score = importance_score(full, ablated)
        key = f"{mname}/{workload}"
        rows.append([mname, workload, grid, spec.label(),
                     deltas["seconds"], deltas["messages"],
                     deltas["bytes"], deltas["diff_bytes"], score])
        cells.setdefault(key, {}).setdefault(grid, {})[mech] = {
            "spec": spec.label(),
            "full": full,
            "ablated": ablated,
            "deltas": deltas,
            "score": score,
        }
        if grid == "loo":
            loo_scores.setdefault(mech, []).append((score, key, deltas))

    # The ranked "which mechanism earns its cost" view: a mechanism's
    # headline importance is its peak leave-one-out score over the
    # swept (machine, workload) cells.
    ranking = []
    for mech, entries in loo_scores.items():
        peak_score, peak_key, peak_deltas = max(entries)
        ranking.append({
            "mechanism": mech,
            "score": peak_score,
            "peak_cell": peak_key,
            "peak_deltas": peak_deltas,
            # Positive seconds delta: removing the mechanism slows the
            # run down, i.e. the mechanism pays for itself.
            "earns_cost": peak_deltas["seconds"] > 0,
        })
    ranking.sort(key=lambda e: e["score"], reverse=True)

    report = Report("ablation-sweep",
                    f"Mechanism importance at {top} processors "
                    f"(leave-one-out{' + one-only' if 'only' in opts.grids else ''})")
    report.lines = fmt.format_table(
        ["machine", "program", "grid", "spec", "d.seconds", "d.msgs",
         "d.bytes", "d.diffbytes", "score"], rows)
    if ranking:
        report.lines.append("")
        report.lines.append("mechanism importance (peak leave-one-out "
                            "score; + = removing it hurts):")
        for rank, entry in enumerate(ranking, start=1):
            sign = "+" if entry["earns_cost"] else "-"
            report.lines.append(
                f"{rank}. {entry['mechanism']:<13s} {entry['score']:8.3f} "
                f"{sign}  peak at {entry['peak_cell']} "
                f"(d.seconds {entry['peak_deltas']['seconds']:+.3f}, "
                f"d.msgs {entry['peak_deltas']['messages']:+.3f})")
    report.data = {"cells": cells, "ranking": ranking, "top_procs": top,
                   "grids": list(opts.grids),
                   "mechanisms": list(opts.mechanisms)}
    return report


def run_experiment(exp_id: str, scale: Scale = Scale.BENCH) -> Report:
    """Run one experiment by id at the given scale."""
    return get_experiment(exp_id).run(scale)


def list_experiments() -> List[Experiment]:
    order = (["t1", "t2"] + [f"fig{i}" for i in range(1, 17)] +
             ["x1", "x2", "x3", "x4", "a1", "a2", "a3", "fault-sweep",
              "failure-sweep", "sync-sweep", "ablation-sweep"])
    return [REGISTRY[k] for k in order if k in REGISTRY]
