"""Generate EXPERIMENTS.md from archived benchmark results.

Reads ``benchmarks/results/<exp_id>.txt`` (written by the benchmark
suite) and pairs each regenerated artifact with the paper's claim,
producing the paper-vs-measured record the reproduction promises.
The file opens with a mapping table (paper artifact -> experiment id
-> machines -> workloads -> validate checks) assembled from the
experiment registry and :data:`repro.harness.validate.CHECKS`.

EXPERIMENTS.md is generated — edit this module (claims, the mapping,
the deviations list), re-run the benchmark suite if results changed,
then regenerate with::

    PYTHONPATH=src python -m repro.harness.experiments_md [results_dir] [output_md]

(defaults: ``benchmarks/results`` and ``EXPERIMENTS.md``).
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Tuple

from repro.harness.experiments import list_experiments
from repro.harness.validate import CHECKS

#: What the paper reports for each artifact.  Absolute numbers are
#: OCR-elided in our source text, so claims are stated as the shape
#: relations the prose establishes.
PAPER_CLAIMS: Dict[str, str] = {
    "t1": "TreadMarks has almost no effect on single-processor times; "
          "the 4D/480 is somewhat slower than the DECstation when the "
          "working set exceeds its secondary cache (only SOR differs "
          "sizably).",
    "t2": "Synchronization rates order the applications: Water has "
          "thousands of remote lock acquires/second, M-Water an order "
          "of magnitude fewer; TSP-18 syncs more than TSP-19; "
          "ILINK-BAD has several times CLP's barrier and message "
          "rates.",
    "fig1": "ILINK-CLP: both machines speed up sublinearly (inherent "
            "load imbalance); the SGI leads by the smallest margin of "
            "the ILINK inputs.",
    "fig2": "ILINK-BAD: worst ILINK input; the SGI-TreadMarks gap is "
            "the largest, tracking the higher barrier rate.",
    "fig3": "SOR 2000x1000: better speedup on TreadMarks than on the "
            "SGI — the SGI is memory-bandwidth bound on its shared "
            "bus, each DECstation has a private path to memory, and "
            "diffs ship only changed words.",
    "fig4": "SOR 1000x1000 (fits the SGI L2 at 8 processors): "
            "TreadMarks still achieves the better speedup.",
    "fig5": "TSP 19 cities: speedup favours the SGI (about 6.3 vs "
            "4-ish); its eager coherence propagates the bound sooner, "
            "so processors do less redundant work.",
    "fig6": "TSP 18 cities: same ordering, slightly larger gap (more "
            "synchronization per unit of computation).",
    "fig7": "Water: TreadMarks gets essentially no speedup (per-update "
            "locks generate an overwhelming message rate); the SGI "
            "scales normally.",
    "fig8": "M-Water: batching updates restores TreadMarks to real "
            "speedup; the SGI is virtually unchanged versus Water.",
    "fig9": "Simulated SOR: linear-ish speedup on AH and HS; AS is "
            "sub-linear due to communication cost.",
    "fig10": "Simulated TSP: AH and HS comparable; AS falls behind as "
             "the computation-to-communication ratio drops.",
    "fig11": "Simulated M-Water: only AH keeps improving; AS peaks at "
             "a small processor count, HS peaks later but stays well "
             "below AH (synchronization messages and lock waits).",
    "fig12": "At the largest machine, HS sends a small fraction of "
             "AS's messages (about 1/9 for SOR; less than 1/4 for "
             "TSP; ~1/4 for M-Water).",
    "fig13": "HS moves roughly 1/4 (TSP) to 1/8 of AS's data; "
             "per-node diff coalescing drives the reduction.",
    "fig14": "SOR on AS: reducing the fixed per-message cost has the "
             "largest effect; speedup approaches the other "
             "architectures.",
    "fig15": "M-Water on AS: fixed and per-word costs matter about "
             "equally.",
    "fig16": "M-Water on HS: the fixed cost matters more than for AS "
             "(HS already cut data volume more than message count).",
    "x1": "Replacing the bound lock's lazy release with an eager "
          "release improves TSP's 8-processor speedup most of the way "
          "to the SGI's.",
    "x2": "Kernel-level TreadMarks halves lock/barrier times; ILINK, "
          "SOR and TSP barely change, M-Water improves sharply.",
    "x3": "Initializing SOR so every point changes equalizes data "
          "movement; TreadMarks still achieves the better speedup.",
    "x4": "Minimum remote lock acquisition takes a fraction of a "
          "millisecond and an 8-processor barrier about two; moving "
          "TreadMarks into the kernel roughly halves both (§2.2, "
          "§2.4.4).",
    "a1": "(Repo ablation — no paper counterpart.) Diffs vs "
          "whole-page transfer on the fault path.",
    "a2": "(Repo ablation.) Lazy vs eager release across programs: "
          "eager trades extra messages for freshness.",
    "a3": "(Repo ablation.) HS node-size sweep: bigger nodes cut "
          "messages with diminishing returns.",
    "fault-sweep": "(Repo robustness experiment — no paper "
                   "counterpart.)  The paper's TreadMarks runs over "
                   "UDP and supplies its own reliability (§2.2); this "
                   "sweep injects deterministic message loss under the "
                   "reliable-delivery layer and measures the speedup "
                   "decay: monotone per program, steepest for the "
                   "message-rate-bound programs.",
    "failure-sweep": "(Repo robustness experiment — no paper "
                     "counterpart.)  The paper's machines assume "
                     "fail-free nodes; this sweep crash-stops a node "
                     "mid-run under the software machines and "
                     "measures degraded completion: every cell still "
                     "finishes and verifies, detection latency is "
                     "bounded by the keepalive backstop, and the "
                     "recovery counters (pages re-homed/lost, lock "
                     "tokens regenerated, barrier reconfigurations) "
                     "account for the repair.  Degraded speedup sits "
                     "below the clean baseline by roughly the lost "
                     "node's share plus the detection stall.",
    "sync-sweep": "(Repo design-space experiment — extends §3's "
                  "comparison.)  The paper attributes the software "
                  "machines' synchronization gap to message handling "
                  "on the critical path (§3.3.4); this sweep makes "
                  "the synchronization algorithm a free variable "
                  "(token/mcs/ticket/combining locks x central/tree/"
                  "combining barriers) and measures how far the best "
                  "policy moves AS and HS toward AH's default.  "
                  "Expected: distributing the barrier (tree, or "
                  "combining in the switch) lifts the barrier-bound "
                  "programs on AS; lock choice barely matters on a "
                  "DSM, where lock transfer cost is dominated by the "
                  "consistency data it drags along; AH is flat — "
                  "hardware synchronization was never the bottleneck.",
    "ablation-sweep": "(Repo design-space experiment — extends §2.4's "
                      "protocol description.)  The paper stacks seven "
                      "separable DSM mechanisms (twins, RLE diffs, "
                      "lazy diff fetch, lazy release, write-notice "
                      "piggybacking, diff merging, exponential "
                      "retransmission backoff) but never isolates "
                      "their contributions; this sweep switches each "
                      "one off (leave-one-out) on AS and HS and ranks "
                      "them by importance — the mean relative change "
                      "over seconds, messages, bytes, and diff bytes, "
                      "peaked across (machine, workload) cells.  "
                      "Expected: diffs dominate (whole-page transfer "
                      "multiplies M-Water's bytes), lazy fetch next "
                      "(eager fetch floods pages the node never "
                      "reads), every mechanism nonzero somewhere; "
                      "backoff registers only under injected loss, so "
                      "its cell pairs a lossy ablated run with a "
                      "lossy full-protocol baseline.",
}


#: (machines, workloads) per experiment — the run grid each artifact
#: declares, kept in sync with :mod:`repro.harness.experiments`.
RUN_GRIDS: Dict[str, Tuple[str, str]] = {
    "t1": ("TreadMarks, SGI (1 proc)", "all eight workloads"),
    "t2": ("TreadMarks (8 procs)", "all eight workloads"),
    "fig1": ("TreadMarks vs SGI", "ilink_clp"),
    "fig2": ("TreadMarks vs SGI", "ilink_bad"),
    "fig3": ("TreadMarks vs SGI", "sor_large"),
    "fig4": ("TreadMarks vs SGI", "sor_small"),
    "fig5": ("TreadMarks vs SGI", "tsp19"),
    "fig6": ("TreadMarks vs SGI", "tsp18"),
    "fig7": ("TreadMarks vs SGI", "water"),
    "fig8": ("TreadMarks vs SGI", "mwater"),
    "fig9": ("AH, HS, AS", "sor_sim"),
    "fig10": ("AH, HS, AS", "tsp19"),
    "fig11": ("AH, HS, AS", "mwater"),
    "fig12": ("AS vs HS (largest machine)", "sor_sim, tsp19, mwater"),
    "fig13": ("AS vs HS (largest machine)", "sor_sim, tsp19, mwater"),
    "fig14": ("AS x overhead presets", "sor_sim"),
    "fig15": ("AS x overhead presets", "mwater"),
    "fig16": ("HS x overhead presets", "mwater"),
    "x1": ("TreadMarks (lazy, eager bound lock), SGI", "tsp19"),
    "x2": ("TreadMarks (user, kernel), SGI",
           "sor_small, ilink_clp, tsp19, mwater"),
    "x3": ("TreadMarks vs SGI", "sor_large, sor_alldirty"),
    "x4": ("TreadMarks (user, kernel)", "sync micro-benchmarks"),
    "a1": ("TreadMarks (diffs on/off)", "sor_small, mwater"),
    "a2": ("TreadMarks (lazy, eager)", "tsp19, mwater, sor_small"),
    "a3": ("HS (1-16 procs/node)", "sor_small, mwater"),
    "fault-sweep": ("TreadMarks x loss rates (0-5%)",
                    "sor_small, tsp19, mwater"),
    "failure-sweep": ("AS, HS x crash fractions (25%, 50%)",
                      "sor_sim, tsp19"),
    "sync-sweep": ("AS, AH, HS x 4 locks x 3 barriers",
                   "tsp18, mwater"),
    "ablation-sweep": ("AS, HS x 7 mechanisms (leave-one-out)",
                       "sor_sim, tsp19, mwater"),
}


def _mapping_table() -> list:
    """Paper artifact -> experiment -> grid -> shape-check mapping."""
    lines = [
        "## Figure-to-experiment map",
        "",
        "Run any row with `repro-harness run <exp id>`; the checks "
        "column names",
        "the PASS/FAIL claims `repro-harness validate` evaluates for "
        "that",
        "experiment (defined in `repro.harness.validate`).",
        "",
        "| paper artifact | exp id | machines | workloads | claimed "
        "shape | validate checks |",
        "|---|---|---|---|---|---|",
    ]
    checks_by_exp: Dict[str, list] = {}
    for check in CHECKS:
        checks_by_exp.setdefault(check.exp_id, []).append(check.name)
    for exp in list_experiments():
        machines, workloads = RUN_GRIDS.get(exp.exp_id, ("—", "—"))
        checks = ", ".join(
            f"`{name}`" for name in checks_by_exp.get(exp.exp_id, []))
        lines.append(
            f"| {exp.paper_ref} | `{exp.exp_id}` | {machines} "
            f"| {workloads} | {exp.shape_note} | {checks or '—'} |")
    lines.append("")
    return lines


def build(results_dir: str) -> str:
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Regenerated by `pytest benchmarks/ --benchmark-only` (bench "
        "scale; see",
        "`repro.harness.workloads` for exact problem sizes).  Absolute "
        "numbers are",
        "not comparable to the paper's testbed — every machine "
        "constant is a",
        "calibrated stand-in (DESIGN.md) — so each entry records the "
        "paper's *claim*",
        "and the measured *shape*.  Known deviations are called out "
        "inline.",
        "",
        "This file is generated — edit "
        "`src/repro/harness/experiments_md.py` and",
        "regenerate with `PYTHONPATH=src python -m "
        "repro.harness.experiments_md`.",
        "",
    ]
    lines.extend(_mapping_table())
    for exp in list_experiments():
        lines.append(f"## {exp.exp_id} — {exp.title} ({exp.paper_ref})")
        lines.append("")
        lines.append(f"**Paper:** {PAPER_CLAIMS.get(exp.exp_id, '—')}")
        lines.append("")
        path = os.path.join(results_dir, f"{exp.exp_id}.txt")
        if os.path.exists(path):
            with open(path) as fh:
                body = fh.read().rstrip()
            lines.append("**Measured:**")
            lines.append("")
            lines.append("```")
            lines.append(body)
            lines.append("```")
        else:
            lines.append("*(no archived result — run the benchmark "
                         "suite first)*")
        lines.append("")
    lines.extend(_correctness())
    lines.extend(_deviations())
    return "\n".join(lines) + "\n"


def _correctness() -> list:
    return [
        "## Correctness checking (repro.check)",
        "",
        "Every number above assumes the five machine models implement "
        "their",
        "memory models correctly.  `repro.check` makes that assumption "
        "testable",
        "without perturbing any of the results: the checkers only "
        "observe, so an",
        "armed run finishes in exactly the same simulated cycle as an "
        "unarmed one",
        "(asserted by `benchmarks/bench_check_overhead.py`, which "
        "writes",
        "`BENCH_check_overhead.json`).",
        "",
        "* `repro-harness check [--scale test]` — runs the fixed fuzz "
        "seeds plus",
        "  the SOR/TSP/Water battery on all five machines with the "
        "online",
        "  invariant checkers armed (SWMR for the hardware models; "
        "interval",
        "  monotonicity, diff-covers-twin and no-write-to-invalid-page "
        "for the",
        "  LRC models) and the post-run LRC history verifier.  A "
        "violation",
        "  raises `ConsistencyViolation` naming the offending protocol "
        "event,",
        "  its simulated time, and a replayable slice of the "
        "preceding trace.",
        "* `repro-harness fuzz --seed 0 --iters 50` — differential "
        "fuzzing:",
        "  seeded random data-race-free programs run on all five "
        "machines, final",
        "  memory images and checker verdicts diffed.  Failures "
        "shrink to a",
        "  minimal program (`--no-shrink` to skip) and persist under",
        "  `tests/fuzz_seeds/`, which the test suite replays forever "
        "after.",
        "* `REPRO_CHECK=1 python -m pytest` — the whole tier-1 suite "
        "with online",
        "  checkers armed (`REPRO_CHECK=history` adds history "
        "recording); one CI",
        "  leg runs this way.",
        "",
    ]


def _deviations() -> list:
    return [
        "## Known deviations",
        "",
        "* **TSP at large simulated machines (fig10).**  Our scaled "
        "instances (12",
        "  cities standing in for 19) leave too little work per "
        "processor at 64",
        "  CPUs, so the HS/AS curves are noisier and flatter than the "
        "paper's; the",
        "  ordering AH ≥ HS ≥ AS still holds.  Branch-and-bound is "
        "also inherently",
        "  instance-sensitive — seed 11 of our generator reproduces "
        "the paper's",
        "  occasional super-linear hardware speedup.",
        "* **SOR 1000x1000 on the SGI (fig4).**  With per-processor "
        "bands exactly",
        "  fitting the 1 MB L2, our SGI model shows mild super-linear "
        "speedup",
        "  (thrashing baseline), so TreadMarks and the SGI finish "
        "closer than the",
        "  paper's figure; the large-SOR case (fig3) shows the "
        "paper's full effect.",
        "* **HS peak for M-Water (fig11).**  The paper has HS peak "
        "mid-range (their",
        "  elided processor count); our HS peaks at the single-node "
        "boundary and",
        "  declines beyond it, but stays strictly between AS and AH "
        "as the paper",
        "  describes.",
        "* **Table 1 DEC vs DEC+TreadMarks.**  Identical by "
        "construction: at one",
        "  node the protocol engages no remote machinery, which is "
        "the paper's",
        "  observation (measured difference within noise).",
        "* **fig12, TSP row.**  HS's *synchronization* messages do "
        "not shrink as",
        "  much as the paper's (our scaled instance makes the queue "
        "token migrate",
        "  between nodes almost every pop); miss messages drop ~10x "
        "as expected.",
        "* **fig15 (M-Water overhead sweep on AS).**  The paper "
        "reports fixed and",
        "  per-word costs mattering about equally; in our calibration "
        "the fixed",
        "  cost dominates for M-Water too, because our messages are "
        "smaller on",
        "  average than the paper's (run-compressed notices, scaled "
        "molecule",
        "  count).  The direction of every individual knob matches.",
        "* **fault-sweep at bench scale, TSP and M-Water rows.**  At "
        "the lowest",
        "  loss rates the speedup can tick *up* by 1-2% before the "
        "decay takes",
        "  over: TSP's branch-and-bound prunes differently when loss "
        "perturbs",
        "  bound-propagation timing, and M-Water's lock-token "
        "migration order",
        "  shifts.  The monotone decay the experiment claims is exact "
        "at test",
        "  scale and holds at bench scale once recovery cost "
        "dominates (the",
        "  largest rate is always the slowest).  SOR, with no "
        "data-dependent",
        "  control flow, decays strictly at every scale.",
        "",
    ]


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    results_dir = argv[0] if argv else os.path.join("benchmarks",
                                                    "results")
    output = argv[1] if len(argv) > 1 else "EXPERIMENTS.md"
    text = build(results_dir)
    with open(output, "w") as fh:
        fh.write(text)
    print(f"wrote {output} from {results_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
