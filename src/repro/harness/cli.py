"""Command-line interface: ``repro-harness``.

Usage::

    repro-harness list
    repro-harness run t1 fig3 --scale bench
    repro-harness run all --scale test
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.harness.experiments import (REGISTRY, Scale, list_experiments,
                                       run_experiment)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the tables and figures of Cox et al., "
                    "'Software Versus Hardware Shared-Memory "
                    "Implementation' (ISCA 1994).")
    sub = parser.add_subparsers(dest="command", required=True)

    lister = sub.add_parser("list", help="list all experiments")
    lister.set_defaults(func=cmd_list)

    runner = sub.add_parser("run", help="run experiments by id")
    runner.add_argument("ids", nargs="+",
                        help="experiment ids (or 'all')")
    runner.add_argument("--scale", choices=[s.value for s in Scale],
                        default=Scale.BENCH.value,
                        help="problem-size scale (default: bench)")
    runner.set_defaults(func=cmd_run)

    validator = sub.add_parser(
        "validate",
        help="evaluate the paper's shape claims as PASS/FAIL checks")
    validator.add_argument("--scale", choices=[s.value for s in Scale],
                           default=Scale.BENCH.value)
    validator.set_defaults(func=cmd_validate)
    return parser


def cmd_list(_args: argparse.Namespace) -> int:
    for exp in list_experiments():
        print(f"{exp.exp_id:6s} {exp.paper_ref:14s} {exp.title}")
        print(f"       shape: {exp.shape_note}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    scale = Scale(args.scale)
    ids: List[str] = args.ids
    if ids == ["all"]:
        ids = [e.exp_id for e in list_experiments()]
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"known: {sorted(REGISTRY)}", file=sys.stderr)
        return 2
    for exp_id in ids:
        start = time.time()
        report = run_experiment(exp_id, scale)
        elapsed = time.time() - start
        print(report.text())
        print(f"   [{exp_id} at scale={scale.value} in {elapsed:.1f}s; "
              f"expected shape: {REGISTRY[exp_id].shape_note}]")
        print()
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.harness.validate import format_results, run_validation
    results = run_validation(Scale(args.scale))
    for line in format_results(results):
        print(line)
    return 0 if all(ok for _c, ok in results) else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
