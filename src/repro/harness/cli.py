"""Command-line interface: ``repro-harness``.

Usage::

    repro-harness list
    repro-harness run t1 fig3 --scale bench
    repro-harness run all --scale test --jobs 4
    repro-harness run fig3 --metrics-out metrics.jsonl --no-cache
    repro-harness validate --jobs 0            # 0 = all cores
    repro-harness trace fig3 --scale test
    repro-harness report --check --figures fig3,fig6

``run`` and ``validate`` fan independent simulations out over ``--jobs``
worker processes and reuse results from the content-addressed cache
(``--cache-dir``, default ``.repro-cache`` or ``$REPRO_CACHE_DIR``);
``--no-cache`` forces fresh simulation.  Both accelerations are
guaranteed not to change any number (see ``repro.harness.parallel``).
``trace`` always simulates serially and afresh — spans must be
collected live in-process.

Every simulated or cache-served run appends one record to the
append-only provenance ledger (``--ledger``, default
``<cache>/ledger.jsonl`` or ``$REPRO_LEDGER``; ``--no-ledger``
disables), and per-run start/done progress streams to stderr
(``--quiet`` suppresses).  ``report`` regenerates the committed
goldens and figure data through the ledger + cache and, with
``--check``, exits non-zero on any drift.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time
from typing import List, Optional

# The CLI is written against the stable public surface (repro.__all__)
# wherever it reaches for library behaviour; only harness plumbing
# with no public equivalent (registry, default paths, exporters) comes
# from deep modules.
from repro import (ConfigurationError, ResultCache, Scale, run_context,
                   trace_session)
from repro.harness.cache import default_cache_dir, default_ledger_path
from repro.harness.experiments import (REGISTRY, ablation_sweep_options,
                                       failure_sweep_options,
                                       fault_sweep_options,
                                       list_experiments, run_experiment,
                                       sync_sweep_options)
from repro.ledger import Ledger, ledger_session
from repro.net.faults import parse_crashes, parse_schedule
from repro.trace import write_chrome_trace, write_metrics_jsonl


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the tables and figures of Cox et al., "
                    "'Software Versus Hardware Shared-Memory "
                    "Implementation' (ISCA 1994).")
    sub = parser.add_subparsers(dest="command", required=True)

    lister = sub.add_parser("list", help="list all experiments")
    lister.set_defaults(func=cmd_list)

    runner = sub.add_parser("run", help="run experiments by id")
    runner.add_argument("ids", nargs="+",
                        help="experiment ids (or 'all')")
    runner.add_argument("--scale", choices=[s.value for s in Scale],
                        default=Scale.BENCH.value,
                        help="problem-size scale (default: bench)")
    runner.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="also write one metrics JSON line per "
                             "machine run (machine, app, cycles, "
                             "counters)")
    runner.add_argument("--loss-rate", type=float, action="append",
                        dest="loss_rates", metavar="P", default=None,
                        help="fault-sweep: per-message drop probability "
                             "(repeatable; overrides the default rate "
                             "grid)")
    runner.add_argument("--fault-seed", type=int, default=None,
                        metavar="N",
                        help="fault-sweep: seed of the deterministic "
                             "fault plane (default: 42)")
    runner.add_argument("--fault-schedule", default=None, metavar="SPEC",
                        help="fault-sweep: targeted fault rules, e.g. "
                             "'drop:diff_request:src=2:nth=3; "
                             "dup:lock_grant'")
    runner.add_argument("--crash", default=None, metavar="SPEC",
                        help="failure-sweep: explicit crash-stop "
                             "events, e.g. 'crash@node3:t=500000; "
                             "crash@node1:t=2000000:rejoin=9000000' "
                             "(overrides the --crash-frac grid)")
    runner.add_argument("--crash-frac", type=float, action="append",
                        dest="crash_fracs", metavar="F", default=None,
                        help="failure-sweep: crash the last node at "
                             "fraction F of the clean run (repeatable; "
                             "default: 0.25 and 0.5)")
    runner.add_argument("--detect-cycles", type=int, default=None,
                        metavar="N",
                        help="failure-sweep: keepalive backstop — a "
                             "crashed node is declared dead within N "
                             "cycles even without retransmission "
                             "traffic (default: 1000000)")
    runner.add_argument("--sync-lock", action="append",
                        dest="sync_locks", metavar="ALG", default=None,
                        help="sync-sweep: lock algorithm to include "
                             "(repeatable; token/mcs/ticket/combining; "
                             "default: all)")
    runner.add_argument("--sync-barrier", action="append",
                        dest="sync_barriers", metavar="ALG", default=None,
                        help="sync-sweep: barrier algorithm to include "
                             "(repeatable; central/tree/combining; "
                             "default: all)")
    runner.add_argument("--sync-workload", action="append",
                        dest="sync_workloads", metavar="NAME",
                        default=None,
                        help="sync-sweep: workload to include "
                             "(repeatable; default: tsp18 and mwater)")
    runner.add_argument("--sync-machine", action="append",
                        dest="sync_machines", metavar="NAME",
                        default=None,
                        help="sync-sweep: machine to include "
                             "(repeatable; default: as, ah, hs)")
    _add_ablation_options(runner)
    _add_exec_options(runner)
    runner.set_defaults(func=cmd_run)

    tracer = sub.add_parser(
        "trace",
        help="run experiments with tracing on; write a Chrome trace")
    tracer.add_argument("ids", nargs="+",
                        help="experiment ids (or 'all')")
    tracer.add_argument("--scale", choices=[s.value for s in Scale],
                        default=Scale.TEST.value,
                        help="problem-size scale (default: test)")
    tracer.add_argument("--out", metavar="PATH", default=None,
                        help="Chrome trace output path (default: "
                             "traces/<ids>-<scale>.trace.json)")
    tracer.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="also write metrics JSONL (with time "
                             "breakdowns) for the traced runs")
    tracer.set_defaults(func=cmd_trace)

    validator = sub.add_parser(
        "validate",
        help="evaluate the paper's shape claims as PASS/FAIL checks")
    validator.add_argument("--scale", choices=[s.value for s in Scale],
                           default=Scale.BENCH.value)
    _add_exec_options(validator)
    validator.set_defaults(func=cmd_validate)

    reporter = sub.add_parser(
        "report",
        help="regenerate committed goldens and figure data from the "
             "ledger-backed cache; detect drift")
    reporter.add_argument("--figures", metavar="IDS", default=None,
                          help="comma-separated figure experiment ids "
                               "(default: fig3,fig6)")
    reporter.add_argument("--scale", choices=[s.value for s in Scale],
                          default=Scale.TEST.value,
                          help="problem-size scale (default: test)")
    reporter.add_argument("--check", action="store_true",
                          help="exit non-zero if any regenerated "
                               "artifact drifts from the committed one")
    reporter.add_argument("--write", action="store_true",
                          help="rewrite the committed artifacts with "
                               "the regenerated data")
    reporter.add_argument("--drift-out", metavar="PATH", default=None,
                          help="also write the structured drift "
                               "document (JSON) here")
    _add_exec_options(reporter)
    reporter.set_defaults(func=cmd_report)

    checker = sub.add_parser(
        "check",
        help="run the checked conformance battery (online invariant "
             "checkers + differential fuzz programs) on all machines")
    checker.add_argument("--scale", choices=[s.value for s in Scale],
                         default=Scale.TEST.value,
                         help="problem-size scale for the application "
                              "entries (default: test)")
    checker.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="parallel simulation workers "
                              "(0 = all cores; default: 1)")
    checker.set_defaults(func=cmd_check)

    fuzzer = sub.add_parser(
        "fuzz",
        help="differential-fuzz random DRF programs across all five "
             "machine models with the consistency checkers armed")
    fuzzer.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default: 0)")
    fuzzer.add_argument("--iters", type=int, default=50, metavar="N",
                        help="number of random programs (default: 50)")
    fuzzer.add_argument("--shrink", dest="shrink", action="store_true",
                        default=True,
                        help="shrink failures to a minimal reproducer "
                             "(default)")
    fuzzer.add_argument("--no-shrink", dest="shrink",
                        action="store_false",
                        help="keep failing programs as generated")
    fuzzer.add_argument("--seeds-dir", metavar="PATH", default=None,
                        help="regression-seed directory; persisted "
                             "failures are replayed first and new "
                             "minimal repros saved here (default: "
                             "tests/fuzz_seeds)")
    fuzzer.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel simulation workers "
                             "(0 = all cores; default: 1)")
    fuzzer.add_argument("--ablation-iters", type=int, default=0,
                        metavar="N",
                        help="additional random-ablation differential "
                             "cases (each runs one program on software "
                             "machines with a seeded random mechanism "
                             "subset switched off; default: 0)")
    fuzzer.set_defaults(func=cmd_fuzz)

    ablater = sub.add_parser(
        "ablate",
        help="run the ablation-sweep experiment and print the ranked "
             "which-mechanism-earns-its-cost report")
    ablater.add_argument("--scale", choices=[s.value for s in Scale],
                         default=Scale.TEST.value,
                         help="problem-size scale (default: test)")
    _add_ablation_options(ablater)
    _add_exec_options(ablater)
    ablater.set_defaults(func=cmd_ablate)
    return parser


def _add_ablation_options(sub: argparse.ArgumentParser) -> None:
    """--ablate-* grid options, shared by `run` and `ablate`."""
    sub.add_argument("--ablate-mechanism", action="append",
                     dest="ablate_mechanisms", metavar="NAME",
                     default=None,
                     help="ablation-sweep: mechanism to sweep "
                          "(repeatable; twins/diffs/lazy_fetch/"
                          "lazy_release/piggyback/diff_merge/backoff; "
                          "default: all seven)")
    sub.add_argument("--ablate-workload", action="append",
                     dest="ablate_workloads", metavar="NAME",
                     default=None,
                     help="ablation-sweep: workload to include "
                          "(repeatable; default: sor_sim, tsp19, "
                          "mwater)")
    sub.add_argument("--ablate-machine", action="append",
                     dest="ablate_machines", metavar="NAME",
                     default=None,
                     help="ablation-sweep: software machine to include "
                          "(repeatable; default: as and hs)")
    sub.add_argument("--ablate-grid", action="append",
                     dest="ablate_grids", metavar="GRID", default=None,
                     help="ablation-sweep: spec grid — 'loo' (leave "
                          "one out) and/or 'only' (one mechanism "
                          "kept); repeatable; default: loo")


def _add_exec_options(sub: argparse.ArgumentParser) -> None:
    """--jobs / cache / ledger / progress options, shared by the
    simulation-heavy subcommands (run, validate, report)."""
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="run up to N independent simulations in "
                          "parallel worker processes (0 = all cores; "
                          "default: 1)")
    sub.add_argument("--cache-dir", metavar="PATH", default=None,
                     help="content-addressed result cache directory "
                          "(default: $REPRO_CACHE_DIR or .repro-cache)")
    sub.add_argument("--no-cache", action="store_true",
                     help="simulate every point afresh, and store "
                          "nothing")
    sub.add_argument("--ledger", metavar="PATH", default=None,
                     help="append-only provenance ledger (default: "
                          "$REPRO_LEDGER or <cache dir>/ledger.jsonl)")
    sub.add_argument("--no-ledger", action="store_true",
                     help="record no provenance")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress per-run progress lines on stderr")


def _make_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir or default_cache_dir())


def _make_ledger(args: argparse.Namespace) -> Optional[Ledger]:
    if args.no_ledger:
        return None
    path = args.ledger or default_ledger_path(args.cache_dir)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    return Ledger(path)


def _report_cache(cache: Optional[ResultCache],
                  ledger: Optional[Ledger] = None) -> None:
    if cache is not None:
        print(cache.format_stats())
    if ledger is not None and ledger.appended:
        print(f"[ledger] appended={ledger.appended} path={ledger.path}")


def cmd_list(_args: argparse.Namespace) -> int:
    for exp in list_experiments():
        print(f"{exp.exp_id:6s} {exp.paper_ref:14s} {exp.title}")
        print(f"       shape: {exp.shape_note}")
    return 0


def _resolve_ids(ids: List[str]) -> Optional[List[str]]:
    if ids == ["all"]:
        return [e.exp_id for e in list_experiments()]
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"known: {sorted(REGISTRY)}", file=sys.stderr)
        return None
    return ids


def _fault_overrides(args: argparse.Namespace, ids: List[str]):
    """Build fault_sweep_options kwargs from CLI flags (or None)."""
    overrides = {}
    if args.loss_rates is not None:
        overrides["loss_rates"] = tuple(args.loss_rates)
    if args.fault_seed is not None:
        overrides["seed"] = args.fault_seed
    if args.fault_schedule is not None:
        overrides["schedule"] = parse_schedule(args.fault_schedule)
    if overrides and "fault-sweep" not in ids:
        raise ConfigurationError(
            "--loss-rate/--fault-seed/--fault-schedule parameterize the "
            "'fault-sweep' experiment, which is not among the ids to "
            "run")
    return overrides or None


def _failure_overrides(args: argparse.Namespace, ids: List[str]):
    """Build failure_sweep_options kwargs from CLI flags (or None)."""
    overrides = {}
    if args.crash is not None:
        overrides["crashes"] = parse_crashes(args.crash)
    if args.crash_fracs is not None:
        overrides["fracs"] = tuple(args.crash_fracs)
    if args.detect_cycles is not None:
        overrides["detect_cycles"] = args.detect_cycles
    if overrides and "failure-sweep" not in ids:
        raise ConfigurationError(
            "--crash/--crash-frac/--detect-cycles parameterize the "
            "'failure-sweep' experiment, which is not among the ids "
            "to run")
    return overrides or None


def _sync_overrides(args: argparse.Namespace, ids: List[str]):
    """Build sync_sweep_options kwargs from CLI flags (or None)."""
    overrides = {}
    if args.sync_locks is not None:
        overrides["locks"] = tuple(args.sync_locks)
    if args.sync_barriers is not None:
        overrides["barriers"] = tuple(args.sync_barriers)
    if args.sync_workloads is not None:
        overrides["workloads"] = tuple(args.sync_workloads)
    if args.sync_machines is not None:
        overrides["machines"] = tuple(args.sync_machines)
    if overrides and "sync-sweep" not in ids:
        raise ConfigurationError(
            "--sync-lock/--sync-barrier/--sync-workload/--sync-machine "
            "parameterize the 'sync-sweep' experiment, which is not "
            "among the ids to run")
    return overrides or None


def _ablation_overrides(args: argparse.Namespace, ids: List[str]):
    """Build ablation_sweep_options kwargs from CLI flags (or None)."""
    overrides = {}
    if args.ablate_mechanisms is not None:
        overrides["mechanisms"] = tuple(args.ablate_mechanisms)
    if args.ablate_workloads is not None:
        overrides["workloads"] = tuple(args.ablate_workloads)
    if args.ablate_machines is not None:
        overrides["machines"] = tuple(args.ablate_machines)
    if args.ablate_grids is not None:
        overrides["grids"] = tuple(args.ablate_grids)
    if overrides and "ablation-sweep" not in ids:
        raise ConfigurationError(
            "--ablate-mechanism/--ablate-workload/--ablate-machine/"
            "--ablate-grid parameterize the 'ablation-sweep' "
            "experiment, which is not among the ids to run")
    return overrides or None


def cmd_run(args: argparse.Namespace) -> int:
    scale = Scale(args.scale)
    ids = _resolve_ids(args.ids)
    if ids is None:
        return 2
    try:
        fault_overrides = _fault_overrides(args, ids)
        failure_overrides = _failure_overrides(args, ids)
        sync_overrides = _sync_overrides(args, ids)
        ablation_overrides = _ablation_overrides(args, ids)
    except ConfigurationError as exc:
        print(exc, file=sys.stderr)
        return 2
    cache = _make_cache(args)
    ledger = _make_ledger(args)

    def run_all() -> None:
        for exp_id in ids:
            start = time.time()
            report = run_experiment(exp_id, scale)
            elapsed = time.time() - start
            print(report.text())
            print(f"   [{exp_id} at scale={scale.value} in "
                  f"{elapsed:.1f}s; "
                  f"expected shape: {REGISTRY[exp_id].shape_note}]")
            print()

    fault_ctx = (fault_sweep_options(**fault_overrides)
                 if fault_overrides else contextlib.nullcontext())
    failure_ctx = (failure_sweep_options(**failure_overrides)
                   if failure_overrides else contextlib.nullcontext())
    sync_ctx = (sync_sweep_options(**sync_overrides)
                if sync_overrides else contextlib.nullcontext())
    ablation_ctx = (ablation_sweep_options(**ablation_overrides)
                    if ablation_overrides else contextlib.nullcontext())
    with fault_ctx, failure_ctx, sync_ctx, ablation_ctx, \
            ledger_session(ledger), \
            run_context(jobs=args.jobs, cache=cache, ledger=ledger,
                        quiet=args.quiet):
        if args.metrics_out:
            # Metrics-only session: collects every run with zero
            # per-event overhead (no tracers are created).
            with trace_session(trace=False) as session:
                run_all()
            lines = write_metrics_jsonl(args.metrics_out,
                                        session.results)
            print(f"wrote {lines} metrics records to "
                  f"{args.metrics_out}")
        else:
            run_all()
    _report_cache(cache, ledger)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    scale = Scale(args.scale)
    ids = _resolve_ids(args.ids)
    if ids is None:
        return 2
    out = args.out
    if out is None:
        out = os.path.join(
            "traces", f"{'-'.join(ids)}-{scale.value}.trace.json")
    out_dir = os.path.dirname(out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)

    with trace_session(trace=True) as session:
        for exp_id in ids:
            start = time.time()
            report = run_experiment(exp_id, scale)
            elapsed = time.time() - start
            print(report.text())
            print(f"   [{exp_id} traced at scale={scale.value} in "
                  f"{elapsed:.1f}s]")
            print()

    write_chrome_trace(out, session.tracers)
    print(f"wrote Chrome trace of {len(session.tracers)} runs to {out}")
    print("  (load in chrome://tracing or https://ui.perfetto.dev)")
    print()
    print("time breakdown (fraction of aggregate processor time):")
    for run in session.runs:
        b = run.result.breakdown
        if b is None:
            continue
        fracs = " ".join(f"{cat}={frac:.2f}"
                         for cat, frac in b.fractions().items())
        print(f"  {run.result.machine:12s} {run.result.app:12s} "
              f"p{run.result.nprocs:<3d} {fracs} "
              f"sw_overhead={b.software_overhead_fraction():.2f}")
    if args.metrics_out:
        lines = write_metrics_jsonl(args.metrics_out, session.results)
        print(f"wrote {lines} metrics records to {args.metrics_out}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.harness.validate import format_results, run_validation
    cache = _make_cache(args)
    ledger = _make_ledger(args)
    with ledger_session(ledger), \
            run_context(jobs=args.jobs, cache=cache, ledger=ledger,
                        quiet=args.quiet):
        results = run_validation(Scale(args.scale))
    for line in format_results(results):
        print(line)
    _report_cache(cache, ledger)
    return 0 if all(ok for _c, ok in results) else 1


def cmd_report(args: argparse.Namespace) -> int:
    import json as _json

    from repro.harness.report import DEFAULT_FIGURES, run_report
    figures = DEFAULT_FIGURES
    if args.figures:
        figures = tuple(f for f in args.figures.split(",") if f)
    unknown = [f for f in figures if f not in REGISTRY]
    if unknown:
        print(f"unknown figure ids: {unknown}", file=sys.stderr)
        return 2
    cache = _make_cache(args)
    ledger = _make_ledger(args)
    with ledger_session(ledger), \
            run_context(jobs=args.jobs, cache=cache, ledger=ledger,
                        quiet=args.quiet):
        outcome = run_report(figures=figures, scale=Scale(args.scale),
                             write=args.write, log=print)
    _report_cache(cache, ledger)
    if args.drift_out:
        with open(args.drift_out, "w") as fh:
            _json.dump(outcome.drift_document(), fh, indent=2,
                       sort_keys=True)
            fh.write("\n")
        print(f"wrote drift document to {args.drift_out}")
    if outcome.drifts:
        print(f"[report] DRIFT: {len(outcome.drifts)} mismatched "
              f"value(s)", file=sys.stderr)
        for drift in outcome.drifts:
            print(f"  {drift.line()}", file=sys.stderr)
        if args.check:
            return 2
    elif args.check:
        print("[report] OK: no drift")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.check.conformance import run_conformance
    report = run_conformance(Scale(args.scale), jobs=args.jobs,
                             log=print)
    for line in report.lines():
        print(line)
    return 0 if report.ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.check.fuzz import SEEDS_DIRNAME, fuzz_run, load_seeds
    seeds_dir = args.seeds_dir or SEEDS_DIRNAME
    regressions = load_seeds(seeds_dir)
    if regressions:
        print(f"replaying {len(regressions)} persisted regression "
              f"seed(s) from {seeds_dir}")
    report = fuzz_run(args.seed, args.iters, shrink=args.shrink,
                      seeds_dir=seeds_dir, jobs=args.jobs,
                      regression_programs=regressions,
                      ablation_iters=args.ablation_iters, log=print)
    status = "PASS" if report.ok else "FAIL"
    print(f"[{status}] fuzz campaign seed={args.seed}: "
          f"{report.programs_run} programs "
          f"({len(regressions)} regression + {report.iterations} "
          f"random), {len(report.failures)} failure(s)")
    for outcome in report.failures:
        print(f"  - {outcome.reason}")
    return 0 if report.ok else 1


def cmd_ablate(args: argparse.Namespace) -> int:
    scale = Scale(args.scale)
    try:
        overrides = _ablation_overrides(args, ["ablation-sweep"])
    except ConfigurationError as exc:
        print(exc, file=sys.stderr)
        return 2
    cache = _make_cache(args)
    ledger = _make_ledger(args)
    ablation_ctx = (ablation_sweep_options(**overrides)
                    if overrides else contextlib.nullcontext())
    with ablation_ctx, ledger_session(ledger), \
            run_context(jobs=args.jobs, cache=cache, ledger=ledger,
                        quiet=args.quiet):
        start = time.time()
        report = run_experiment("ablation-sweep", scale)
        elapsed = time.time() - start
    print(report.text())
    print(f"   [ablation-sweep at scale={scale.value} in "
          f"{elapsed:.1f}s]")
    _report_cache(cache, ledger)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
