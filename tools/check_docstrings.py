"""Docstring-coverage gate for the public surface.

Walks, with nothing but the standard library's ``ast``:

* every symbol exported through ``repro.__all__`` — resolved to the
  module that defines it, then to its class/function definition, and
* every module, class, public function and public method of the
  ``repro.sync`` package (the subsystem this gate shipped with)
  and the ``repro.ablate`` package.

A definition *passes* when it (or, for ``__init__``, its class) has a
docstring.  Names starting with ``_`` are private and exempt, as are
trivial delegating ``__repr__``/``__eq__``-style dunders; ``__init__``
is checked through its class.  Failures print as
``path:line: <kind> <qualname>`` and the process exits 1 — wire-able
as a CI job with no third-party dependency (interrogate is not in the
image; this is the small-AST-check alternative the repo chose).

Run from the repo root::

    PYTHONPATH=src python tools/check_docstrings.py [--verbose]
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Dict, Iterator, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")

#: Dunders whose meaning is fixed by the data model: a docstring on
#: ``__len__`` restates the protocol, so they are exempt.
EXEMPT_DUNDERS = frozenset({
    "__repr__", "__str__", "__eq__", "__ne__", "__hash__", "__len__",
    "__iter__", "__next__", "__contains__", "__getitem__",
    "__setitem__", "__enter__", "__exit__", "__bool__", "__lt__",
    "__le__", "__gt__", "__ge__", "__init__", "__post_init__",
    "__init_subclass__",
})


def iter_py_files(root: str) -> Iterator[str]:
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def module_name(path: str) -> str:
    rel = os.path.relpath(path, SRC_ROOT)
    parts = rel[:-3].split(os.sep)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


class Definition:
    """One checkable definition: a module, class, or function."""

    def __init__(self, kind: str, qualname: str, path: str, line: int,
                 has_doc: bool) -> None:
        self.kind = kind
        self.qualname = qualname
        self.path = path
        self.line = line
        self.has_doc = has_doc

    def location(self) -> str:
        rel = os.path.relpath(self.path, REPO_ROOT)
        return f"{rel}:{self.line}: {self.kind} {self.qualname}"


def collect_definitions(path: str) -> List[Definition]:
    """Every public definition in one file, with docstring status."""
    with open(path) as fh:
        tree = ast.parse(fh.read(), filename=path)
    mod = module_name(path)
    defs = [Definition("module", mod, path, 1,
                       ast.get_docstring(tree) is not None)]

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if child.name.startswith("_"):
                    continue
                qual = f"{prefix}{child.name}"
                defs.append(Definition(
                    "class", qual, path, child.lineno,
                    ast.get_docstring(child) is not None))
                walk(child, f"{qual}.")
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                name = child.name
                if name in EXEMPT_DUNDERS:
                    continue
                if name.startswith("_") and not name.endswith("__"):
                    continue
                defs.append(Definition(
                    "def", f"{prefix}{name}", path, child.lineno,
                    ast.get_docstring(child) is not None))
    walk(tree, f"{mod}.")
    return defs


def public_surface() -> Tuple[Dict[str, Tuple[str, int]], List[str]]:
    """(__all__ symbol -> defining location, gated package files).

    Imports ``repro`` to read ``__all__`` and resolve each export to
    the file and line of its definition; the ``repro.sync`` and
    ``repro.ablate`` files come from the package paths so *new*
    undocumented code cannot hide by not being imported.
    """
    import importlib
    import inspect

    repro = importlib.import_module("repro")
    locations: Dict[str, Tuple[str, int]] = {}
    for symbol in repro.__all__:
        obj = getattr(repro, symbol, None)
        try:
            path = inspect.getsourcefile(obj)
            _lines, line = inspect.getsourcelines(obj)
        except TypeError:
            continue        # data exports (DEFAULT_SYNC, tuples, ...)
        if not path:
            continue
        path = os.path.abspath(path)
        # Decorated exports (e.g. contextmanagers) can resolve to the
        # decorator's home in the stdlib; only our tree is gated.
        if not path.startswith(SRC_ROOT + os.sep):
            continue
        locations[symbol] = (path, line)

    package_files: List[str] = []
    for package in ("sync", "ablate"):
        root = os.path.join(SRC_ROOT, "repro", package)
        package_files.extend(iter_py_files(root))
    return locations, package_files


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="docstring-coverage gate for repro.__all__, "
                    "repro.sync, and repro.ablate")
    parser.add_argument("--verbose", action="store_true",
                        help="list every definition checked")
    args = parser.parse_args(argv)

    sys.path.insert(0, SRC_ROOT)
    exports, sync_files = public_surface()

    # Files under the gate: every file defining an __all__ export,
    # plus the whole repro.sync and repro.ablate packages.
    files = sorted({path for path, _line in exports.values()}
                   | set(sync_files))

    checked: List[Definition] = []
    for path in files:
        checked.extend(collect_definitions(path))

    missing = [d for d in checked if not d.has_doc]
    if args.verbose:
        for definition in checked:
            mark = "ok  " if definition.has_doc else "MISS"
            print(f"{mark} {definition.location()}")

    covered = len(checked) - len(missing)
    print(f"docstring coverage: {covered}/{len(checked)} public "
          f"definitions across {len(files)} files "
          f"({len(exports)} __all__ exports + gated packages)")
    if missing:
        print()
        for definition in missing:
            print(f"  {definition.location()}")
        print(f"\n{len(missing)} public definition(s) lack docstrings")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
